// Package crit is a control-criticality dataflow analysis over filter
// work functions. The paper's premise (§3) is that errors striking
// *control* state — loop trip counts, queue indices, addressing, frame
// counters — are catastrophic, while errors striking *data* state merely
// degrade output quality. Until now the repo hard-coded that split in the
// fault-model weights (internal/fault); this package derives it from the
// filter implementations themselves.
//
// The analysis is intraprocedural and stdlib-only (go/parser + go/ast, the
// same no-download constraint as internal/lint): for every work function it
// propagates two taints to a fixpoint over the assignment graph:
//
//   - control-criticality, backwards from control sinks: loop bounds,
//     slice/array indices, slice bounds, branch and switch conditions,
//     range induction variables;
//   - pop-taint, forwards from stream-data sources: ctx.Pop/Peek calls in
//     filter mode, element reads of slice/array parameters in kernel mode
//     (the codec kernels receive the popped frame as a slice).
//
// Every tracked variable lands in the two-point lattice {data-tolerable,
// control-critical}; every statement is charged to the side its writes
// land on, giving a per-filter control-critical fraction that the fault
// model can consume (fault.CriticalityWeighted, sim.Config.CritFractions).
//
// The statically-detectable catastrophic pattern — a filter deriving its
// own control flow from popped *data* values — is reported as a finding:
//
//	CM001  a loop bound derives from popped data without a bounds guard
//	CM002  a slice/array index derives from popped data without a bounds
//	       guard
//	CM003  a control-critical receiver field is mutated outside Work/Init
//
// Findings are suppressible with `//repolint:ignore CM00x reason` comments
// (same directive grammar as internal/lint; the lint-facing aliases RL004
// for CM001/CM002 and RL005 for CM003 are honored too).
package crit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Kind is the two-point classification lattice.
type Kind int

const (
	// DataTolerable state only flows into pushed item values: an error
	// striking it perturbs output samples (DTE-like damage).
	DataTolerable Kind = iota
	// ControlCritical state flows into a loop bound, index, branch
	// condition or frame counter: an error striking it desequences
	// communication (AE/QME-like damage).
	ControlCritical
)

func (k Kind) String() string {
	if k == ControlCritical {
		return "control-critical"
	}
	return "data-tolerable"
}

// Finding codes.
const (
	// CodeLoopBound flags a loop bound derived from popped data (CM001).
	CodeLoopBound = "CM001"
	// CodeIndex flags an index derived from popped data (CM002).
	CodeIndex = "CM002"
	// CodeFieldMut flags a control-critical field mutated outside
	// Work/Init (CM003).
	CodeFieldMut = "CM003"
)

// lintAlias maps finding codes to the repolint rule that wraps them, so a
// `//repolint:ignore RL004` directive also silences the critmap form.
var lintAlias = map[string]string{
	CodeLoopBound: "RL004",
	CodeIndex:     "RL004",
	CodeFieldMut:  "RL005",
}

// Var is one classified variable of a work function. Receiver fields are
// tracked as "recv.field" composite names.
type Var struct {
	Name       string         `json:"name"`
	Pos        token.Position `json:"pos"`
	Kind       Kind           `json:"-"`
	KindName   string         `json:"kind"`
	PopTainted bool           `json:"popTainted,omitempty"`
	Guarded    bool           `json:"guarded,omitempty"`
}

// Finding is one catastrophic-pattern report.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Code    string         `json:"code"`
	Filter  string         `json:"filter"`
	Message string         `json:"message"`
}

// String renders the conventional "file:line:col: [CODE] filter: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Filter, f.Message)
}

// FilterMap is the protection map of one work function.
type FilterMap struct {
	// Name is the filter's display name: the NewFuncFilter name literal
	// (Sprintf formats with the verbs stripped, so "chan%d" matches
	// "chan0".."chanN"), "pkg.Type" for Work methods, or "pkg.func" for
	// ctx-taking helpers.
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Stmts / ControlStmts count the function's statements and the subset
	// charged control-critical.
	Stmts        int       `json:"stmts"`
	ControlStmts int       `json:"controlStmts"`
	Vars         []Var     `json:"vars,omitempty"`
	Findings     []Finding `json:"findings,omitempty"`

	// The exported taint lattice (see summary.go): what the whole-program
	// soundness composition consumes beyond the control fraction.
	//
	// CriticalPaths proves this filter derives control state from popped
	// data (source -> sink chains); Escapes lists tainted values leaving
	// the firing via fields/globals/closures; Opaque lists tainted values
	// routed through calls the fixpoint cannot follow.
	CriticalPaths []TaintPath  `json:"criticalPaths,omitempty"`
	Escapes       []Escape     `json:"escapes,omitempty"`
	Opaque        []OpaqueCall `json:"opaque,omitempty"`
}

// ConsumesCritically reports whether popped data provably reaches control
// state in this filter: a reconstructed taint path, or a direct CM001/CM002
// violation site.
func (f *FilterMap) ConsumesCritically() bool {
	if len(f.CriticalPaths) > 0 {
		return true
	}
	for _, fi := range f.Findings {
		if fi.Code == CodeLoopBound || fi.Code == CodeIndex {
			return true
		}
	}
	return false
}

// ControlFraction is the fraction of statements charged control-critical.
func (f *FilterMap) ControlFraction() float64 {
	if f.Stmts == 0 {
		return 0
	}
	return float64(f.ControlStmts) / float64(f.Stmts)
}

// CriticalVars returns the control-critical subset of Vars.
func (f *FilterMap) CriticalVars() []Var {
	var out []Var
	for _, v := range f.Vars {
		if v.Kind == ControlCritical {
			out = append(out, v)
		}
	}
	return out
}

// ProtectionMap aggregates per-filter analyses, the package's
// machine-readable product.
type ProtectionMap struct {
	Filters []*FilterMap `json:"filters"`
}

// Merge appends another map's filters.
func (m *ProtectionMap) Merge(other *ProtectionMap) {
	if other != nil {
		m.Filters = append(m.Filters, other.Filters...)
	}
}

// Findings returns every finding across filters, in source order.
func (m *ProtectionMap) Findings() []Finding {
	var out []Finding
	for _, f := range m.Filters {
		out = append(out, f.Findings...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// Fractions returns filter name -> control-critical fraction, the shape
// sim.Config.CritFractions consumes.
func (m *ProtectionMap) Fractions() map[string]float64 {
	out := make(map[string]float64, len(m.Filters))
	for _, f := range m.Filters {
		out[f.Name] = f.ControlFraction()
	}
	return out
}

// FractionFor resolves a runtime filter name against the analyzed names:
// exact match first, then the longest analyzed name that prefixes the
// query (NewFuncFilter names built with Sprintf are stored verb-stripped,
// so "chan%d" matches "chan3").
func (m *ProtectionMap) FractionFor(name string) (float64, bool) {
	best, bestLen := 0.0, -1
	for _, f := range m.Filters {
		if f.Name == name {
			return f.ControlFraction(), true
		}
		if f.Name != "" && strings.HasPrefix(name, f.Name) && len(f.Name) > bestLen {
			best, bestLen = f.ControlFraction(), len(f.Name)
		}
	}
	return best, bestLen >= 0
}

// FilterFor resolves a runtime filter name to its analyzed map with the
// same exact-then-longest-prefix rule as FractionFor. It returns nil for
// names with no analyzed counterpart (builtin sources/sinks, identity
// shims).
func (m *ProtectionMap) FilterFor(name string) *FilterMap {
	var best *FilterMap
	bestLen := -1
	for _, f := range m.Filters {
		if f.Name == name {
			return f
		}
		if f.Name != "" && strings.HasPrefix(name, f.Name) && len(f.Name) > bestLen {
			best, bestLen = f, len(f.Name)
		}
	}
	return best
}

// MeanFraction is the statement-weighted mean control-critical fraction.
func (m *ProtectionMap) MeanFraction() float64 {
	stmts, control := 0, 0
	for _, f := range m.Filters {
		stmts += f.Stmts
		control += f.ControlStmts
	}
	if stmts == 0 {
		return 0
	}
	return float64(control) / float64(stmts)
}

// Mode selects where stream data enters the analyzed functions.
type Mode int

const (
	// FilterMode analyzes work functions (a *stream.Ctx parameter):
	// taint enters through ctx.Pop/Peek calls.
	FilterMode Mode = iota
	// KernelMode analyzes every function of a codec/DSP package: taint
	// enters through element reads of slice/array parameters (the popped
	// frame handed to the kernel). Scalar parameters are treated as
	// structural configuration (rates, sizes), not stream data.
	KernelMode
)

// AnalyzeSource analyzes in-memory source (for tests). Findings covered
// by an ignore directive are dropped.
func AnalyzeSource(filename, src string, mode Mode) (*ProtectionMap, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("crit: %w", err)
	}
	m := AnalyzeParsed(fset, f, mode)
	suppressFindings(fset, f, m)
	return m, nil
}

// AnalyzeFile analyzes one Go source file, applying repolint:ignore
// suppression.
func AnalyzeFile(path string, mode Mode) (*ProtectionMap, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("crit: %w", err)
	}
	m := AnalyzeParsed(fset, f, mode)
	suppressFindings(fset, f, m)
	return m, nil
}

// AnalyzeParsed analyzes an already-parsed file WITHOUT applying
// suppression directives; callers embedding the analysis (internal/lint)
// run their own directive handling over the wrapped findings.
func AnalyzeParsed(fset *token.FileSet, f *ast.File, mode Mode) *ProtectionMap {
	a := &fileAnalyzer{fset: fset, file: f, pkg: f.Name.Name, mode: mode, imports: importNames(f)}
	return a.run()
}

// ctxPopFns are the Ctx methods that deliver stream data.
var ctxPopFns = map[string]bool{
	"Pop": true, "PopF32": true, "PopI32": true,
	"Peek": true, "PeekF32": true,
}

// guardFnRe matches callee names that bound their argument; a tainted
// value routed through one counts as guarded.
var guardFnRe = regexp.MustCompile(`(?i)(clamp|bound|min|max|guard|limit)`)

// sprintfVerbRe strips format verbs from Sprintf'd filter names.
var sprintfVerbRe = regexp.MustCompile(`%[-+ #0]*[0-9*]*(\.[0-9*]+)?[a-zA-Z]`)

// fileAnalyzer holds per-file discovery state.
type fileAnalyzer struct {
	fset    *token.FileSet
	file    *ast.File
	pkg     string
	mode    Mode
	imports map[string]bool
	// works records each Work method's analysis, keyed by receiver type,
	// for the CM003 cross-method field-mutation check.
	works map[string]workInfo
}

func importNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = true
	}
	return names
}

// isCtxType reports whether a parameter type is *Ctx / *stream.Ctx.
func isCtxType(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.Ident:
		return x.Name == "Ctx"
	case *ast.SelectorExpr:
		return x.Sel.Name == "Ctx"
	}
	return false
}

// ctxParamNames returns the names of *Ctx-typed parameters.
func ctxParamNames(params *ast.FieldList) []string {
	var out []string
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		if !isCtxType(field.Type) {
			continue
		}
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// run discovers analyzable functions and analyzes each.
func (a *fileAnalyzer) run() *ProtectionMap {
	m := &ProtectionMap{}
	names := a.funcLitNames()

	for _, decl := range a.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ctxNames := ctxParamNames(fn.Type.Params)
		switch {
		case len(ctxNames) > 0:
			// A work function or ctx-taking helper.
			fm := a.analyzeFunc(a.declName(fn), fn.Recv, fn.Type.Params, fn.Body, FilterMode, ctxNames, fn.Pos())
			m.Filters = append(m.Filters, fm)
			a.recordWork(fn, fm)
		case a.mode == KernelMode:
			m.Filters = append(m.Filters, a.analyzeFunc(a.declName(fn), fn.Recv, fn.Type.Params, fn.Body, KernelMode, nil, fn.Pos()))
		}
		// Nested FuncLits with their own ctx parameter (closures handed to
		// NewFuncFilter from inside builders) are discovered below; the
		// enclosing builder itself has no ctx param and is skipped in
		// filter mode.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			litCtx := ctxParamNames(lit.Type.Params)
			if len(litCtx) == 0 {
				return true
			}
			name := names[lit]
			if name == "" {
				pos := a.fset.Position(lit.Pos())
				name = fmt.Sprintf("%s.func@%d", a.pkg, pos.Line)
			}
			m.Filters = append(m.Filters, a.analyzeFunc(name, nil, lit.Type.Params, lit.Body, FilterMode, litCtx, lit.Pos()))
			return false // the closure is analyzed as its own function
		})
	}

	a.checkFieldMutations(m)
	return m
}

// declName builds the display name of a FuncDecl.
func (a *fileAnalyzer) declName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if t := recvTypeName(fn.Recv.List[0].Type); t != "" {
			if fn.Name.Name == "Work" {
				return a.pkg + "." + t
			}
			return a.pkg + "." + t + "." + fn.Name.Name
		}
	}
	return a.pkg + "." + fn.Name.Name
}

func recvTypeName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	}
	return ""
}

// funcLitNames maps FuncLit nodes to display names derived from their use
// site: the name argument of an enclosing NewFuncFilter call, or the
// variable they are assigned to.
func (a *fileAnalyzer) funcLitNames() map[*ast.FuncLit]string {
	names := map[*ast.FuncLit]string{}
	ast.Inspect(a.file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if calleeName(node.Fun) != "NewFuncFilter" || len(node.Args) == 0 {
				return true
			}
			lit, ok := node.Args[len(node.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			if name := stringArgValue(node.Args[0]); name != "" {
				names[lit] = name
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(node.Lhs) {
					continue
				}
				if id, ok := node.Lhs[i].(*ast.Ident); ok {
					names[lit] = a.pkg + "." + id.Name
				}
			}
		}
		return true
	})
	return names
}

func calleeName(fun ast.Expr) string {
	switch x := fun.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// stringArgValue extracts a literal filter name: a string literal, or the
// format of a Sprintf call with the verbs stripped.
func stringArgValue(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			if s, err := strconv.Unquote(x.Value); err == nil {
				return s
			}
		}
	case *ast.CallExpr:
		if calleeName(x.Fun) == "Sprintf" && len(x.Args) > 0 {
			if format := stringArgValue(x.Args[0]); format != "" {
				return strings.TrimRight(sprintfVerbRe.ReplaceAllString(format, ""), "-_ ")
			}
		}
	}
	return ""
}

// Package fault models hardware error injection for the functional
// simulation (paper §6). The paper's Simics-based injector flips random
// bits in the architectural register file of each core at a configurable
// mean time between errors (MTBE, in instructions), independently per core
// with a per-core random number generator.
//
// We execute filter work functions natively in Go, so register-level flips
// are not directly reproducible; instead each injected error is mapped to
// the architectural manifestation a register bitflip produces at the ISA
// interface (DESIGN.md §5, substitution 1 and §7): a data-value flip, a
// loop-trip-count perturbation, a frame-level control slip, an addressing
// slip, or a queue-pointer corruption. This is exactly the error taxonomy
// of paper §3 (DTE, AE(I|F)(E|L), QME), driven by the same MTBE parameter.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Class enumerates architectural error manifestations.
type Class int

const (
	// None marks the absence of an error.
	None Class = iota
	// DataBitflip flips one random bit in one data item produced or held
	// by the firing (a data transmission/computation error, DTE).
	DataBitflip
	// ControlTrip perturbs a communication loop's trip count: the firing
	// pushes or pops k items too many or too few (item-granularity
	// alignment error, AE_I(E|L)).
	ControlTrip
	// ControlFrame skips or repeats one whole firing inside the scope
	// (frame-granularity alignment error, AE_F(E|L)). The PPU guarantees
	// scope sequencing, so the slip is bounded to single firings.
	ControlFrame
	// AddrSlip makes one access read a neighbouring in-bounds element
	// (wrong data, correct count) — the PPU bounds addressing errors to
	// in-bounds accesses.
	AddrSlip
	// QueuePtr corrupts one bit of a communication queue's management
	// state (QME). Only possible with the unprotected software queue;
	// with a reliable QM this class is re-drawn as DataBitflip (§4.3).
	QueuePtr
	numClasses
)

func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case DataBitflip:
		return "data-bitflip"
	case ControlTrip:
		return "control-trip"
	case ControlFrame:
		return "control-frame"
	case AddrSlip:
		return "addr-slip"
	case QueuePtr:
		return "queue-ptr"
	}
	return "invalid"
}

// ABFTChecksumOpsPerItem is the Table-3-style cost of the ABFT kernel
// protection scheme: arithmetic suboperations per item produced by a
// checksummed firing — one accumulate fused into the kernel's compute
// loop plus one re-accumulate when the checksum is re-derived from the
// communicated buffer at verification. Like CommGuard's suboperations
// (Fig. 14) these are accounted against committed instructions but never
// committed as instructions themselves.
const ABFTChecksumOpsPerItem = 2

// Model holds the manifestation weights. The defaults approximate the
// register-file residency of data, induction-variable, address and pointer
// values in compiled DSP loops; see DESIGN.md §7.
type Model struct {
	Weights [numClasses]float64
	// QueueProtected redirects QueuePtr manifestations to DataBitflip,
	// reflecting hardware that removed the queue-management error class.
	QueueProtected bool
}

// DefaultModel returns the calibrated manifestation weights from DESIGN.md.
func DefaultModel(queueProtected bool) Model {
	var m Model
	m.Weights[DataBitflip] = 0.55
	m.Weights[ControlTrip] = 0.20
	m.Weights[ControlFrame] = 0.05
	m.Weights[AddrSlip] = 0.15
	m.Weights[QueuePtr] = 0.05
	m.QueueProtected = queueProtected
	return m
}

// Validate reports whether the model's weights are usable.
func (m Model) Validate() error {
	total := 0.0
	for c, w := range m.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("fault: weight for %v is %v", Class(c), w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("fault: all weights zero")
	}
	return nil
}

// Sample draws a manifestation class.
func (m Model) Sample(r *rand.Rand) Class {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := r.Float64() * total
	for c := Class(1); c < numClasses; c++ {
		x -= m.Weights[c]
		if x < 0 {
			if c == QueuePtr && m.QueueProtected {
				return DataBitflip
			}
			return c
		}
	}
	return DataBitflip
}

// Counts tallies injected errors by class.
type Counts [numClasses]uint64

// Total returns the number of injected errors across all classes.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// ByName returns the per-class tallies keyed by class name, the shape the
// telemetry snapshot serializes.
func (c Counts) ByName() map[string]uint64 {
	m := make(map[string]uint64, numClasses)
	for cls, v := range c {
		m[Class(cls).String()] = v
	}
	return m
}

// Injector schedules errors for one core. Inter-error gaps are drawn from
// an exponential distribution with the configured mean (the paper: "Each
// error injector picks a random target cycle in the future following the
// mean error rate"). Each core owns an independent Injector seeded from
// the run seed and the core index, matching the paper's per-core RNGs.
type Injector struct {
	mtbe   float64 // mean instructions between errors; <=0 disables
	rng    *rand.Rand
	model  Model
	nextAt float64 // absolute instruction index of the next error
	now    float64 // committed instructions so far
	counts Counts
}

// NewInjector creates an injector for one core. mtbe <= 0 disables
// injection (the error-free configuration).
func NewInjector(mtbe float64, seed int64, model Model) *Injector {
	inj := &Injector{
		mtbe:  mtbe,
		rng:   rand.New(rand.NewSource(seed)),
		model: model,
	}
	if mtbe > 0 {
		inj.nextAt = inj.rng.ExpFloat64() * mtbe
	} else {
		inj.nextAt = math.Inf(1)
	}
	return inj
}

// Rand exposes the injector's per-core RNG so manifestation details
// (which bit, which item, which direction) come from the same stream.
func (inj *Injector) Rand() *rand.Rand { return inj.rng }

// Advance commits n instructions on the core and returns the manifestation
// classes of every error that fired inside that window (usually none, at
// realistic MTBEs at most one).
func (inj *Injector) Advance(n int) []Class {
	if n <= 0 {
		return nil
	}
	inj.now += float64(n)
	if inj.now < inj.nextAt {
		return nil
	}
	var fired []Class
	for inj.nextAt <= inj.now {
		c := inj.model.Sample(inj.rng)
		inj.counts[c]++
		fired = append(fired, c)
		inj.nextAt += inj.rng.ExpFloat64() * inj.mtbe
	}
	return fired
}

// Instructions returns the number of instructions committed so far.
func (inj *Injector) Instructions() uint64 { return uint64(inj.now) }

// Counts returns the per-class tallies of injected errors.
func (inj *Injector) Counts() Counts { return inj.counts }

// CoreSeed derives a deterministic per-core seed from a run seed, matching
// the paper's independent per-core generators.
func CoreSeed(runSeed int64, core int) int64 {
	// SplitMix64-style mixing keeps nearby run seeds decorrelated.
	z := uint64(runSeed) + uint64(core+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{
		None: "none", DataBitflip: "data-bitflip", ControlTrip: "control-trip",
		ControlFrame: "control-frame", AddrSlip: "addr-slip", QueuePtr: "queue-ptr",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Class(99).String() != "invalid" {
		t.Error("unknown class should stringify as invalid")
	}
}

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel(false).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultModel(true).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateRejectsBadWeights(t *testing.T) {
	var m Model
	if err := m.Validate(); err == nil {
		t.Error("all-zero weights must be invalid")
	}
	m = DefaultModel(false)
	m.Weights[DataBitflip] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative weight must be invalid")
	}
	m = DefaultModel(false)
	m.Weights[DataBitflip] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN weight must be invalid")
	}
}

func TestSampleRespectsWeights(t *testing.T) {
	m := Model{}
	m.Weights[ControlTrip] = 1
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if c := m.Sample(r); c != ControlTrip {
			t.Fatalf("sample %d: got %v, want ControlTrip", i, c)
		}
	}
}

func TestQueueProtectionRedirectsQueuePtr(t *testing.T) {
	m := Model{QueueProtected: true}
	m.Weights[QueuePtr] = 1
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if c := m.Sample(r); c != DataBitflip {
			t.Fatalf("sample %d: got %v, want DataBitflip (redirected)", i, c)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	m := DefaultModel(false)
	r := rand.New(rand.NewSource(42))
	var counts Counts
	const n = 200000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	for c := DataBitflip; c <= QueuePtr; c++ {
		want := m.Weights[c] / total
		got := float64(counts[c]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("class %v: frequency %.4f, want %.4f±0.01", c, got, want)
		}
	}
}

func TestInjectorDisabled(t *testing.T) {
	inj := NewInjector(0, 1, DefaultModel(false))
	for i := 0; i < 1000; i++ {
		if fired := inj.Advance(1000000); fired != nil {
			t.Fatal("disabled injector fired an error")
		}
	}
	if inj.Counts().Total() != 0 {
		t.Error("disabled injector recorded errors")
	}
}

// The observed error rate must match the configured MTBE.
func TestInjectorRateMatchesMTBE(t *testing.T) {
	const mtbe = 10000.0
	const steps = 2000000
	inj := NewInjector(mtbe, 7, DefaultModel(false))
	errors := 0
	for i := 0; i < steps/100; i++ {
		errors += len(inj.Advance(100))
	}
	want := float64(steps) / mtbe
	got := float64(errors)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("observed %v errors over %d instructions, want ~%v", got, steps, want)
	}
	if inj.Instructions() != steps {
		t.Errorf("Instructions() = %d, want %d", inj.Instructions(), steps)
	}
	if inj.Counts().Total() != uint64(errors) {
		t.Errorf("Counts().Total() = %d, want %d", inj.Counts().Total(), errors)
	}
}

// Advancing in differently sized steps with the same seed fires the same
// number of errors (scheduling depends on instruction counts, not call
// pattern).
func TestInjectorStepSizeInvariance(t *testing.T) {
	count := func(step int) int {
		inj := NewInjector(5000, 99, DefaultModel(false))
		n := 0
		for done := 0; done < 1000000; done += step {
			n += len(inj.Advance(step))
		}
		return n
	}
	a, b := count(1000), count(10)
	// The error *times* are identical; only boundary effects at the very
	// end could differ, and the window is an exact multiple of both steps.
	if a != b {
		t.Errorf("step 1000 fired %d errors, step 10 fired %d", a, b)
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []Class {
		inj := NewInjector(2000, seed, DefaultModel(false))
		var all []Class
		for i := 0; i < 100; i++ {
			all = append(all, inj.Advance(1000)...)
		}
		return all
	}
	a, b := run(5), run(5)
	if len(a) != len(b) {
		t.Fatalf("same seed, different error counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different class at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical error streams")
	}
}

func TestAdvanceNonPositive(t *testing.T) {
	inj := NewInjector(100, 1, DefaultModel(false))
	if inj.Advance(0) != nil || inj.Advance(-5) != nil {
		t.Error("non-positive advance must be a no-op")
	}
}

func TestCoreSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for core := 0; core < 10; core++ {
		s := CoreSeed(1234, core)
		if seen[s] {
			t.Fatalf("duplicate core seed for core %d", core)
		}
		seen[s] = true
	}
	if CoreSeed(1, 0) == CoreSeed(2, 0) {
		t.Error("different run seeds gave the same core seed")
	}
}

func TestQuickCoreSeedDeterministic(t *testing.T) {
	f := func(seed int64, core uint8) bool {
		c := int(core % 32)
		return CoreSeed(seed, c) == CoreSeed(seed, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdvance(b *testing.B) {
	inj := NewInjector(1e6, 1, DefaultModel(true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Advance(100)
	}
}

package fault

import (
	"math"
	"math/rand"
	"testing"
)

func TestControlMassDefault(t *testing.T) {
	m := DefaultModel(false)
	if got := m.ControlMass(); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("default control mass = %v, want 0.45", got)
	}
	// With a protected queue, QueuePtr mass manifests as DataBitflip and
	// counts on the data side.
	if got := DefaultModel(true).ControlMass(); math.Abs(got-0.40) > 1e-12 {
		t.Errorf("protected control mass = %v, want 0.40", got)
	}
	var zero Model
	if zero.ControlMass() != 0 {
		t.Errorf("zero model control mass should be 0")
	}
}

func TestCriticalityWeighted(t *testing.T) {
	base := DefaultModel(false)
	for _, frac := range []float64{0, 0.1, 0.45, 0.5, 0.9, 1} {
		m := CriticalityWeighted(base, frac)
		if err := m.Validate(); err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		if got := m.ControlMass(); math.Abs(got-frac) > 1e-12 {
			t.Errorf("frac=%v: control mass = %v", frac, got)
		}
		// Relative weights inside the control side must be preserved.
		if frac > 0 {
			wantRatio := base.Weights[ControlTrip] / base.Weights[AddrSlip]
			gotRatio := m.Weights[ControlTrip] / m.Weights[AddrSlip]
			if math.Abs(gotRatio-wantRatio) > 1e-12 {
				t.Errorf("frac=%v: control-side ratio changed: %v vs %v", frac, gotRatio, wantRatio)
			}
		}
	}
	// Identity at the base's own mass.
	if m := CriticalityWeighted(base, base.ControlMass()); m != base {
		t.Errorf("reweighting to the base mass should be the identity: %+v", m)
	}
	// Out-of-range fractions clamp.
	if m := CriticalityWeighted(base, -3); m.ControlMass() != 0 {
		t.Errorf("frac<-0 should clamp to 0")
	}
	if m := CriticalityWeighted(base, 7); math.Abs(m.ControlMass()-1) > 1e-12 {
		t.Errorf("frac>1 should clamp to 1")
	}
	// Degenerate bases are returned unchanged.
	var allData Model
	allData.Weights[DataBitflip] = 1
	if m := CriticalityWeighted(allData, 0.5); m != allData {
		t.Errorf("degenerate base should pass through")
	}
}

func TestCriticalityWeightedSampling(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := CriticalityWeighted(DefaultModel(false), 1)
	for i := 0; i < 1000; i++ {
		if c := m.Sample(r); c == DataBitflip {
			t.Fatalf("frac=1 model sampled DataBitflip at draw %d", i)
		}
	}
	m = CriticalityWeighted(DefaultModel(false), 0)
	for i := 0; i < 1000; i++ {
		if c := m.Sample(r); c != DataBitflip {
			t.Fatalf("frac=0 model sampled %v at draw %d", c, i)
		}
	}
}

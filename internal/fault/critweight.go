package fault

// Criticality-weighted manifestation models. The default Model weights
// encode a fixed split between control-state damage (trip counts,
// frame sequencing, addressing, queue pointers) and data damage, averaged
// over "typical" DSP loop bodies. internal/crit derives the actual
// control-critical statement fraction of each filter from its source; this
// file re-weights the manifestation distribution to match, so a filter
// whose code is 90% control state sees proportionally more ControlTrip /
// ControlFrame / AddrSlip manifestations than one that is a pure data pipe.

// controlClasses returns the manifestations that strike control state; an
// error landing in any of them desequences communication (§3's AE/QME
// taxonomy). With a protected queue manager, QueuePtr manifestations are
// redrawn as DataBitflip at sampling time (§4.3), so their mass belongs to
// the data side there.
func (m Model) controlClasses() []Class {
	if m.QueueProtected {
		return []Class{ControlTrip, ControlFrame, AddrSlip}
	}
	return []Class{ControlTrip, ControlFrame, AddrSlip, QueuePtr}
}

// ControlMass returns the normalized probability mass on the control
// manifestation classes (0.45 for the unprotected DefaultModel, 0.40 for
// the queue-protected one).
func (m Model) ControlMass() float64 {
	total, control := 0.0, 0.0
	for c := Class(1); c < numClasses; c++ {
		total += m.Weights[c]
	}
	if total <= 0 {
		return 0
	}
	for _, c := range m.controlClasses() {
		control += m.Weights[c]
	}
	return control / total
}

// CriticalityWeighted rescales base so its control mass equals frac (a
// filter's control-critical statement fraction from internal/crit), while
// preserving the relative weights inside each side of the split. frac is
// clamped to [0, 1]; a base with a degenerate split (all control or all
// data) is returned unchanged since there is nothing to rebalance.
func CriticalityWeighted(base Model, frac float64) Model {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f0 := base.ControlMass()
	if f0 <= 0 || f0 >= 1 {
		return base
	}
	m := base
	cs := frac / f0
	ds := (1 - frac) / (1 - f0)
	control := map[Class]bool{}
	for _, c := range base.controlClasses() {
		control[c] = true
	}
	for c := Class(1); c < numClasses; c++ {
		if control[c] {
			m.Weights[c] = base.Weights[c] * cs
		} else {
			m.Weights[c] = base.Weights[c] * ds
		}
	}
	return m
}

package fault

import (
	"reflect"
	"testing"
)

// The golden values below pin the observable randomness of the injection
// pipeline for a fixed (seed, MTBE, model). Every experiment in the repo
// derives its error timeline from exactly this chain — CoreSeed mixing,
// the per-core rand stream, ExpFloat64 gap draws, Model.Sample — so a
// refactor that silently changes any link would invalidate every recorded
// figure while still passing the statistical tests. If a change here is
// intentional, re-derive the constants and say so in the commit message.

func TestCoreSeedGolden(t *testing.T) {
	want := map[int]int64{
		0: -4767286540954276203,
		1: 2949826092126892291,
		2: 5139283748462763858,
		7: -3677692746721775708,
	}
	for core, w := range want {
		if got := CoreSeed(42, core); got != w {
			t.Errorf("CoreSeed(42, %d) = %d, want %d", core, got, w)
		}
	}
	// Distinct cores and distinct run seeds must decorrelate.
	if CoreSeed(42, 0) == CoreSeed(42, 1) || CoreSeed(42, 0) == CoreSeed(43, 0) {
		t.Error("CoreSeed collisions across cores or run seeds")
	}
}

func TestAdvanceClassSequenceGolden(t *testing.T) {
	advance := func(inj *Injector) []Class {
		var seq []Class
		for i := 0; i < 40; i++ {
			seq = append(seq, inj.Advance(500)...)
		}
		return seq
	}

	inj := NewInjector(1000, CoreSeed(42, 0), DefaultModel(false))
	want := []Class{
		DataBitflip, DataBitflip, ControlFrame, DataBitflip, AddrSlip,
		ControlTrip, DataBitflip, QueuePtr, AddrSlip, AddrSlip,
		ControlTrip, AddrSlip, DataBitflip, ControlTrip, DataBitflip,
		DataBitflip, DataBitflip, DataBitflip,
	}
	if got := advance(inj); !reflect.DeepEqual(got, want) {
		t.Errorf("unprotected sequence diverged:\n got %v\nwant %v", got, want)
	}
	if inj.Instructions() != 20000 {
		t.Errorf("instructions = %d, want 20000", inj.Instructions())
	}
	if inj.Counts().Total() != uint64(len(want)) {
		t.Errorf("counts total = %d, want %d", inj.Counts().Total(), len(want))
	}

	// Queue-protected model on another core: QueuePtr redraws as
	// DataBitflip, and the core's stream is independent of core 0's.
	inj2 := NewInjector(1000, CoreSeed(42, 1), DefaultModel(true))
	want2 := []Class{
		DataBitflip, DataBitflip, DataBitflip, AddrSlip, ControlTrip,
		AddrSlip, AddrSlip, DataBitflip, AddrSlip, DataBitflip,
		AddrSlip, DataBitflip, DataBitflip, DataBitflip, DataBitflip,
		DataBitflip, ControlFrame, ControlTrip, ControlTrip, ControlTrip,
		DataBitflip, DataBitflip, ControlTrip, DataBitflip, DataBitflip,
		AddrSlip, DataBitflip,
	}
	if got := advance(inj2); !reflect.DeepEqual(got, want2) {
		t.Errorf("protected sequence diverged:\n got %v\nwant %v", got, want2)
	}
}

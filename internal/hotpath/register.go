package hotpath

import (
	"strings"
	"sync"

	"commguard/internal/check"
	"commguard/internal/crit"
)

// FactKey names the check.Config.Facts entry carrying the hotpath
// analysis result (*Fact). The CS020-series rules skip themselves when it
// is absent, keeping internal/check free of a hotpath dependency.
const FactKey = "hotpath"

// Fact is the cross-package fact handed to check.RunRepo.
type Fact struct {
	Findings []Finding
}

func factFor(ctx *check.Context) *Fact {
	f, _ := ctx.Fact(FactKey).(*Fact)
	return f
}

func init() {
	// A //repolint:ignore RL008 directive silences the wrapped CS02x
	// spelling too, the way RL007 covers the atomics codes.
	for _, code := range Codes() {
		crit.RegisterLintAlias(code, "RL008")
	}
	register(CodeAlloc, "hotpath-alloc",
		"heap allocation reachable from a //hotpath:entry function")
	register(CodeBlock, "hotpath-block",
		"blocking operation reachable from a //hotpath:entry function")
	register(CodeHidden, "hotpath-hidden",
		"defer/recover/map mutation reachable from a //hotpath:entry function")
	register(CodeOpaque, "hotpath-opaque",
		"opaque call (function value, interface dispatch, reflection, unclassified stdlib) reachable from a //hotpath:entry function")
}

func register(code, name, doc string) {
	check.Register(check.Rule{
		Code:  code,
		Name:  name,
		Doc:   doc,
		Scope: check.ScopeRepo,
		Check: func(ctx *check.Context) []check.Diagnostic {
			fact := factFor(ctx)
			if fact == nil {
				return nil
			}
			var out []check.Diagnostic
			for _, f := range fact.Findings {
				if f.Code != code {
					continue
				}
				out = append(out, check.Diagnostic{
					Code:     f.Code,
					Severity: check.Warning,
					File:     f.Pos.Filename,
					Line:     f.Pos.Line,
					Col:      f.Pos.Column,
					Symbol:   f.Func(),
					Message:  f.Message + " [entry " + f.Entry + "; path " + strings.Join(f.Path, " -> ") + "]",
					Fix:      "make the path pure, mark a sanctioned boundary //hotpath:ok with a reason, or baseline the finding",
				})
			}
			return out
		},
	})
}

// repoCache memoizes AnalyzeRepo per root for the life of the process, so
// commguard-vet's repo pass and repolint's per-file RL008 wrapping share
// one whole-program analysis instead of re-type-checking the module (and
// the stdlib closure) once per consumer.
var repoCache sync.Map // root -> *repoResult

type repoResult struct {
	once     sync.Once
	findings []Finding
	err      error
}

// RepoFindings is AnalyzeRepo with process-lifetime memoization keyed by
// root. Callers that mutate sources mid-process (synthetic-repo tests)
// should call AnalyzeRepo/AnalyzeDirs directly.
func RepoFindings(root string) ([]Finding, error) {
	v, _ := repoCache.LoadOrStore(root, &repoResult{})
	r := v.(*repoResult)
	r.once.Do(func() {
		r.findings, r.err = AnalyzeRepo(root)
	})
	return r.findings, r.err
}

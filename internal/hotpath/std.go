package hotpath

import "strings"

// Stdlib classification. The analyzer cannot descend into the standard
// library (its internals churn across toolchains and lean on runtime
// intrinsics), so calls out of the module are judged by this table:
// pure (no finding), allocating (CS020), blocking (CS021) — and anything
// the table does not know is opaque (CS023). The conservative default is
// deliberate: an unknown call on a hot path should demand either a table
// entry, a //hotpath:ok waiver, or a baseline entry, never silence.

// stdVerdict is the classification of one stdlib call.
type stdVerdict struct {
	code string // "" = pure
	msg  string
}

var pure = stdVerdict{}

func alloc(msg string) stdVerdict { return stdVerdict{CodeAlloc, msg} }
func block(msg string) stdVerdict { return stdVerdict{CodeBlock, msg} }

// wholly pure packages: value computation only, no allocation, no
// synchronization. sync/atomic is the load-bearing entry — the queue's
// lock-free transit is built on it.
var purePkgs = map[string]bool{
	"math":          true,
	"math/bits":     true,
	"math/cmplx":    true,
	"sync/atomic":   true,
	"unicode":       true,
	"unicode/utf8":  true,
	"unicode/utf16": true,
}

// wholly blocking packages: anything syscall-adjacent. A hot path has no
// business talking to the kernel.
var blockPkgs = map[string]bool{
	"os":        true,
	"os/exec":   true,
	"os/signal": true,
	"syscall":   true,
	"net":       true,
	"net/http":  true,
	"io":        true,
	"io/fs":     true,
	"bufio":     true,
	"log":       true,
}

// pureFuncs lists pure members of mixed packages, keyed "pkg.Name" for
// package functions and "pkg.Recv.Name" for methods.
var pureFuncs = map[string]bool{
	// time: reading the clock is a VDSO call on the platforms we care
	// about — the obs ring's record() depends on this classification.
	"time.Now": true, "time.Since": true, "time.Until": true,
	"time.Time.Add": true, "time.Time.Sub": true, "time.Time.Before": true,
	"time.Time.After": true, "time.Time.Equal": true, "time.Time.Compare": true,
	"time.Time.IsZero": true, "time.Time.Unix": true, "time.Time.UnixNano": true,
	"time.Time.UnixMilli": true, "time.Time.UnixMicro": true,
	"time.Duration.Nanoseconds": true, "time.Duration.Microseconds": true,
	"time.Duration.Milliseconds": true, "time.Duration.Seconds": true,
	"time.Duration.Minutes": true, "time.Duration.Hours": true,
	"time.Duration.Truncate": true, "time.Duration.Round": true,
	// timer upkeep that does not wait (creation is still blocking, below)
	"time.Timer.Stop": true, "time.Timer.Reset": true,
	"time.Ticker.Stop": true, "time.Ticker.Reset": true,

	// sync: releases, signals and counter updates never wait.
	"sync.Mutex.Unlock": true, "sync.Mutex.TryLock": true,
	"sync.RWMutex.Unlock": true, "sync.RWMutex.RUnlock": true,
	"sync.RWMutex.TryLock": true, "sync.RWMutex.TryRLock": true,
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true,
	"sync.Cond.Signal": true, "sync.Cond.Broadcast": true,

	// strings/bytes: scanning is pure; anything that returns a new
	// string/slice is not (default below).
	"strings.Compare": true, "strings.Contains": true, "strings.ContainsAny": true,
	"strings.ContainsRune": true, "strings.Count": true, "strings.EqualFold": true,
	"strings.HasPrefix": true, "strings.HasSuffix": true, "strings.Index": true,
	"strings.IndexAny": true, "strings.IndexByte": true, "strings.IndexRune": true,
	"strings.LastIndex": true, "strings.LastIndexByte": true,
	"bytes.Compare": true, "bytes.Contains": true, "bytes.Count": true,
	"bytes.Equal": true, "bytes.EqualFold": true, "bytes.HasPrefix": true,
	"bytes.HasSuffix": true, "bytes.Index": true, "bytes.IndexByte": true,
	"bytes.LastIndex": true,

	// strconv: parsing is allocation-free on the success path.
	"strconv.Atoi": true, "strconv.ParseInt": true, "strconv.ParseUint": true,
	"strconv.ParseFloat": true, "strconv.ParseBool": true,

	// sort: binary search over caller-owned data.
	"sort.Search": true, "sort.SearchInts": true, "sort.SearchFloat64s": true,
	"sort.SearchStrings": true,

	// errors: inspection (construction is alloc, default below).
	"errors.Is": true, "errors.Unwrap": true,

	// runtime: the one member a hot path may touch.
	"runtime.KeepAlive": true,

	// math/rand: *Rand methods are lock-free PRNG steps (package-level
	// functions hit the global locked source — blocking, below).
	"rand.Rand.Int63": true, "rand.Rand.Uint32": true, "rand.Rand.Uint64": true,
	"rand.Rand.Int31": true, "rand.Rand.Int": true, "rand.Rand.Int63n": true,
	"rand.Rand.Int31n": true, "rand.Rand.Intn": true, "rand.Rand.Float64": true,
	"rand.Rand.Float32": true, "rand.Rand.NormFloat64": true, "rand.Rand.ExpFloat64": true,
}

// knownVerdicts carries explicit non-pure classifications of mixed
// packages, same key scheme as pureFuncs.
var knownVerdicts = map[string]stdVerdict{
	"time.Sleep":     block("time.Sleep parks the goroutine"),
	"time.After":     block("time.After allocates a timer and channel"),
	"time.Tick":      block("time.Tick allocates a ticker"),
	"time.NewTimer":  block("timer creation enters the runtime timer heap"),
	"time.NewTicker": block("ticker creation enters the runtime timer heap"),
	"time.AfterFunc": block("timer creation enters the runtime timer heap"),

	"sync.Mutex.Lock":     block("mutex lock can park the goroutine"),
	"sync.RWMutex.Lock":   block("write lock can park the goroutine"),
	"sync.RWMutex.RLock":  block("read lock can park the goroutine"),
	"sync.WaitGroup.Wait": block("WaitGroup.Wait parks until the counter drains"),
	"sync.Cond.Wait":      block("Cond.Wait parks the goroutine"),
	"sync.Once.Do":        block("Once.Do blocks behind the first caller"),
	"sync.Map.Load":       block("sync.Map operations take internal locks"),
	"sync.Map.Store":      block("sync.Map operations take internal locks"),
	"sync.Map.Range":      block("sync.Map operations take internal locks"),
	"sync.Pool.Get":       block("sync.Pool pins and may allocate via New"),
	"sync.Pool.Put":       block("sync.Pool pins the goroutine"),

	"runtime.Gosched":      block("explicit reschedule"),
	"runtime.GC":           block("forced garbage collection"),
	"runtime.LockOSThread": block("thread pinning"),

	"sort.Slice":       alloc("sort.Slice boxes the slice and closure"),
	"sort.SliceStable": alloc("sort.SliceStable boxes the slice and closure"),
}

// allocDefaultPkgs: unlisted members default to CS020 (they exist to build
// new strings/slices/errors).
var allocDefaultPkgs = map[string]bool{
	"strings": true,
	"bytes":   true,
	"strconv": true,
	"errors":  true,
	"fmt":     true, // Sprint* family; Print*/Scan* overridden to blocking below
}

// classifyStd judges a call into package pkgPath. name is the function
// name; recv is the bare receiver type name for methods ("" for package
// functions).
func classifyStd(pkgPath, pkgName, recv, name string) stdVerdict {
	key := pkgName + "." + name
	if recv != "" {
		key = pkgName + "." + recv + "." + name
	}
	if pureFuncs[key] {
		return pure
	}
	if v, ok := knownVerdicts[key]; ok {
		return v
	}
	if purePkgs[pkgPath] {
		return pure
	}
	if blockPkgs[pkgPath] {
		return block(key + " is syscall-adjacent")
	}
	switch pkgPath {
	case "fmt":
		if strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") || name == "Errorf" {
			return alloc(key + " formats into a new buffer")
		}
		return block(key + " performs I/O")
	case "math/rand", "math/rand/v2":
		if recv != "" {
			return pure
		}
		return block(key + " locks the global rand source")
	case "reflect":
		return stdVerdict{CodeOpaque, "reflection is opaque to the hot-path analysis"}
	case "sort":
		// Sort/Stable and friends run on caller data through an already
		// built interface; the boxing (if any) is flagged at the call.
		return pure
	}
	if allocDefaultPkgs[pkgPath] {
		return alloc(key + " allocates its result")
	}
	return stdVerdict{CodeOpaque, "call into unclassified package " + pkgPath + " (" + key + ")"}
}

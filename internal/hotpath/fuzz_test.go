package hotpath

import "testing"

// FuzzHotpath mirrors FuzzSoundness: whatever the source looks like — the
// per-code fixtures, the clean fixture, or mutations of any of them — the
// lenient single-file analysis may reject the input (parse error) but must
// never panic.
func FuzzHotpath(f *testing.F) {
	for _, src := range fixtures() {
		f.Add(src)
	}
	for _, src := range []string{srcClean, srcDeep, srcSuppressed, srcShared} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fs, err := AnalyzeSource("fuzz.go", []byte(src))
		if err != nil {
			return
		}
		for _, fi := range fs {
			if fi.Code == "" || len(fi.Path) == 0 {
				t.Fatalf("malformed finding: %+v", fi)
			}
			_ = fi.String()
		}
	})
}

package hotpath

// One deliberately impure fixture per CS020-series code, each firing
// exactly its own code, plus a clean annotated fixture firing none — the
// same seed-parity contract the soundness fixtures pin (and the corpus
// FuzzHotpath mutates).

// srcCS020 allocates on the hot path and does nothing else impure.
const srcCS020 = `package p

//hotpath:entry
func Hot(n int) int {
	buf := make([]int, n)
	return len(buf)
}
`

// srcCS021 blocks on the hot path: a channel receive.
const srcCS021 = `package p

//hotpath:entry
func Hot(ch chan int) int {
	v := <-ch
	return v
}
`

// srcCS022 mutates a map on the hot path.
const srcCS022 = `package p

//hotpath:entry
func Hot(m map[int]int, k int) {
	m[k] = k
}
`

// srcCS023 calls through a function value: opaque to the walk.
const srcCS023 = `package p

//hotpath:entry
func Hot(f func() int) int {
	return f()
}
`

// srcClean is a hot path the analyzer must pass: arithmetic, builtins on
// caller-owned memory, in-package helpers, and a sanctioned //hotpath:ok
// slow-path boundary.
const srcClean = `package p

//hotpath:entry
func Hot(dst, src []int) int {
	n := copy(dst, src)
	acc := 0
	for i := 0; i < n; i++ {
		acc += scale(dst[i])
	}
	if acc < 0 {
		refill()
	}
	return acc
}

func scale(v int) int { return v * 3 }

//hotpath:ok sanctioned slow path: fixture boundary, never descended
func refill() {
	_ = make([]int, 64)
}
`

// srcDeep has the violation two calls below the entry, pinning call-path
// reconstruction.
const srcDeep = `package p

//hotpath:entry
func Hot(n int) int {
	return outer(n)
}

func outer(n int) int {
	return len(inner(n))
}

func inner(n int) []int {
	return make([]int, n)
}
`

// srcSuppressed carries //hotpath:ok statement waivers: a matching one
// (CS020 silenced) and a non-matching one (CS021 directive does not cover
// the map write).
const srcSuppressed = `package p

//hotpath:entry
func Hot(m map[int]int, n int) int {
	//hotpath:ok CS020 one-time warmup allocation, measured free
	buf := make([]int, n)
	//hotpath:ok CS021 wrong code: does not cover the map write
	m[0] = len(buf)
	return len(buf)
}
`

// srcShared has two entries reaching one allocating helper: the finding is
// reported once, attributed to the first entry in source order.
const srcShared = `package p

//hotpath:entry
func HotA(n int) int { return len(leak(n)) }

//hotpath:entry
func HotB(n int) int { return cap(leak(n)) }

func leak(n int) []int { return make([]int, n) }
`

func fixtures() map[string]string {
	return map[string]string{
		"CS020": srcCS020,
		"CS021": srcCS021,
		"CS022": srcCS022,
		"CS023": srcCS023,
	}
}

// Package hotpath is a whole-program purity analyzer for the repository's
// fast paths. PR 3 bought the queue transit down to single-digit
// nanoseconds per item and the ROADMAP's kernel-fusion work wants the same
// property inside the filter kernels — but "the steady state does not
// allocate and does not block" was, until now, pinned only by runtime
// benchmarks that silently rot when a new code path skips them. This
// package turns the property into a static proof that runs on every
// commit.
//
// # Annotation grammar
//
// Analysis starts from functions whose doc comment carries a
// //hotpath:entry directive and walks everything statically reachable from
// them:
//
//	//hotpath:entry
//	func (q *Queue) Push(u unit.Unit) bool { ... }
//
// A function that is a sanctioned slow-path boundary — the working-set
// exchange funnels of Fig. 6, which legitimately take a mutex once per
// working set — is marked //hotpath:ok with a reason; the walk stops there
// and the function body is exempt:
//
//	//hotpath:ok working-set exchange: mutexed ECC pointer swap (Table 3)
//	func (q *Queue) publish() { ... }
//
// A statement-level finding can be suppressed in place, naming the codes
// being waived (no codes waives all four), with the directive on the same
// line or the line above — the same placement rule as //repolint:ignore:
//
//	//hotpath:ok CS020 one-time warmup allocation
//	buf := make([]float64, n)
//
// # Findings
//
// Every operation reachable from an entry that violates the purity
// contract is reported with the reconstructed call path from the entry
// (mirroring CS001's taint paths):
//
//	CS020  heap allocation: make/new/append, escaping composite literals,
//	       string concatenation, boxing into an interface
//	CS021  blocking operation: mutex lock, channel send/recv/select,
//	       time.Sleep, goroutine spawn, syscall-y stdlib calls
//	CS022  hidden control flow / map mutation: defer, recover, map write
//	CS023  opaque call: function values, interface method dispatch,
//	       reflection, unclassified stdlib, bodyless functions
//
// # Facts cache and opacity rules
//
// The walk computes per-function facts (local violations + resolved static
// callees) once and caches them, so shared helpers are scanned a single
// time no matter how many entries reach them. In-module callees are
// descended into; stdlib callees are classified by an explicit table
// (std.go) — pure, allocating, blocking — and anything the table does not
// know is opaque (CS023) by design: the analyzer refuses to guess, which
// is what keeps the proof honest. Function values, interface dispatch and
// reflection are opaque for the same reason.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Finding codes. The CS02x block follows CS001-CS003 (soundness verdicts)
// and CS010-CS012 (queue atomics discipline).
const (
	// CodeAlloc flags a heap allocation on a hot path (CS020).
	CodeAlloc = "CS020"
	// CodeBlock flags a blocking operation on a hot path (CS021).
	CodeBlock = "CS021"
	// CodeHidden flags defer/recover/map mutation on a hot path (CS022).
	CodeHidden = "CS022"
	// CodeOpaque flags a call the analyzer cannot see through (CS023).
	CodeOpaque = "CS023"
)

// Codes lists the hotpath finding codes in order.
func Codes() []string { return []string{CodeAlloc, CodeBlock, CodeHidden, CodeOpaque} }

// Finding is one purity violation reachable from a //hotpath:entry.
type Finding struct {
	// Pos locates the offending operation.
	Pos token.Position
	// Code is CS020..CS023.
	Code string
	// Entry is the qualified name of the entry the violation is reachable
	// from (the first entry to reach it, in source order).
	Entry string
	// Path is the reconstructed call chain entry -> ... -> containing
	// function (qualified names; length 1 when the violation is in the
	// entry itself).
	Path []string
	// Message states the defect.
	Message string
}

// Func returns the qualified name of the function containing the finding.
func (f Finding) Func() string {
	if len(f.Path) == 0 {
		return f.Entry
	}
	return f.Path[len(f.Path)-1]
}

// String renders "file:line:col: CODE message (path: a -> b)".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s %s (path: %s)",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Message,
		strings.Join(f.Path, " -> "))
}

// directive markers. Kept in their comment spelling so grep finds both the
// grammar and its parser.
const (
	entryMarker = "hotpath:entry"
	okMarker    = "hotpath:ok"
)

// funcAnn is the annotation state of one function declaration.
type funcAnn struct {
	entry bool
	// ok marks a sanctioned slow-path boundary: the walk stops at the
	// function and its body is exempt. entry wins when both are present.
	ok bool
	// reason is the justification text after //hotpath:ok.
	reason string
}

// parseFuncAnn reads the doc comment of a declaration.
func parseFuncAnn(doc *ast.CommentGroup) funcAnn {
	var ann funcAnn
	if doc == nil {
		return ann
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		switch {
		case text == entryMarker || strings.HasPrefix(text, entryMarker+" "):
			ann.entry = true
		case text == okMarker || strings.HasPrefix(text, okMarker+" "):
			ann.ok = true
			ann.reason = strings.TrimSpace(strings.TrimPrefix(text, okMarker))
		}
	}
	return ann
}

// okDirective is one statement-level //hotpath:ok suppression.
type okDirective struct {
	// codes maps suppressed codes; empty means all hotpath codes.
	codes map[string]bool
}

// covers reports whether the directive waives the given code.
func (d okDirective) covers(code string) bool {
	return len(d.codes) == 0 || d.codes[code]
}

// parseOkLines collects statement-level //hotpath:ok directives of a file,
// keyed by line. Doc-comment directives land here too, harmlessly: no
// finding anchors on a declaration's doc lines.
func parseOkLines(fset *token.FileSet, f *ast.File) map[int]okDirective {
	out := map[int]okDirective{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text != okMarker && !strings.HasPrefix(text, okMarker+" ") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, okMarker))
			d := okDirective{codes: map[string]bool{}}
			for _, field := range strings.Fields(rest) {
				isCode := true
				for _, part := range strings.Split(field, ",") {
					if !looksLikeCode(part) {
						isCode = false
						break
					}
				}
				if !isCode {
					break // reason text starts here
				}
				for _, part := range strings.Split(field, ",") {
					d.codes[part] = true
				}
			}
			out[fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

// looksLikeCode matches "CSnnn".
func looksLikeCode(s string) bool {
	if len(s) != 5 || s[0] != 'C' || s[1] != 'S' {
		return false
	}
	for i := 2; i < 5; i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Sources lists the repo directories (relative to the module root) that
// carry //hotpath:entry annotations and are analyzed by AnalyzeRepo.
func Sources() []string {
	return []string{
		"internal/queue",
		"internal/commguard",
		"internal/stream",
		"internal/dsp",
		"internal/codec/mp3codec",
	}
}

// AnalyzeRepo analyzes the standard annotated directories (Sources) of the
// repository rooted at root. The repository must type-check; a type error
// is returned as an error, not a finding.
func AnalyzeRepo(root string) ([]Finding, error) {
	return AnalyzeDirs(root, Sources())
}

// AnalyzeDirs analyzes the given directories (relative to the module root)
// plus everything in-module they transitively import. Entries are
// discovered only in the named directories; findings may point anywhere
// reachable.
func AnalyzeDirs(root string, dirs []string) ([]Finding, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	var scanPkgs []string
	for _, dir := range dirs {
		ipath := l.module + "/" + strings.Trim(dir, "/")
		if _, err := l.load(ipath); err != nil {
			return nil, fmt.Errorf("hotpath: loading %s: %w", dir, err)
		}
		scanPkgs = append(scanPkgs, ipath)
	}
	a := newAnalyzer(l, false)
	return a.run(scanPkgs), nil
}

// AnalyzeSource analyzes a single in-memory file leniently: calls whose
// callee cannot be resolved (missing cross-file declarations, unimported
// packages) are skipped rather than reported, so a lone file out of a
// larger package does not drown in spurious CS023. This is the repolint
// RL008 form for synthetic sources; on-disk files get the whole-program
// analysis.
func AnalyzeSource(filename string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return AnalyzeParsed(fset, f)
}

// AnalyzeParsed is AnalyzeSource for an already-parsed file.
func AnalyzeParsed(fset *token.FileSet, f *ast.File) ([]Finding, error) {
	l := newFileLoader(fset)
	ipath := l.checkFile(f)
	a := newAnalyzer(l, true)
	return a.run([]string{ipath}), nil
}

// sortFindings orders findings by position then code, deterministically.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
}

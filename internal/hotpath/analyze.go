package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atom is one local purity violation inside a function body, before the
// walk attaches a call path to it.
type atom struct {
	pos  token.Pos
	code string
	msg  string
}

// callSite is one statically resolved in-module callee.
type callSite struct {
	pos token.Pos
	fn  *types.Func
}

// funcFact is the cached per-function analysis result: local violations
// plus the calls the walk descends into. Computed once per function no
// matter how many entries reach it.
type funcFact struct {
	atoms []atom
	calls []callSite
}

type analyzer struct {
	l *loader
	// lenient skips unresolvable callees instead of flagging CS023
	// (single-file mode, where missing cross-file declarations are
	// expected and honest opacity reporting would be all noise).
	lenient bool
	facts   map[*types.Func]*funcFact
	anns    map[*types.Func]funcAnn
}

func newAnalyzer(l *loader, lenient bool) *analyzer {
	a := &analyzer{l: l, lenient: lenient, facts: map[*types.Func]*funcFact{}, anns: map[*types.Func]funcAnn{}}
	for obj, decl := range l.decls {
		a.anns[obj] = parseFuncAnn(decl.Doc)
	}
	return a
}

// run discovers entries in the named packages and walks each.
func (a *analyzer) run(scanPkgs []string) []Finding {
	var entries []*types.Func
	for _, ipath := range scanPkgs {
		for _, f := range a.l.files[ipath] {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := a.l.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if a.anns[obj].entry {
					entries = append(entries, obj)
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Pos() < entries[j].Pos() })

	var out []Finding
	seen := map[string]bool{} // pos|code, across entries: first path wins
	for _, e := range entries {
		visited := map[*types.Func]bool{e: true}
		a.visit(e, []string{qualName(e)}, visited, seen, &out)
	}
	sortFindings(out)
	return out
}

// visit records fn's local atoms under the current path, then descends
// into its unvisited callees.
func (a *analyzer) visit(fn *types.Func, path []string, visited map[*types.Func]bool, seen map[string]bool, out *[]Finding) {
	fact := a.factFor(fn)
	for _, at := range fact.atoms {
		pos := a.l.fset.Position(at.pos)
		key := pos.Filename + ":" + itoa(pos.Line) + ":" + itoa(pos.Column) + "|" + at.code
		if seen[key] {
			continue
		}
		seen[key] = true
		*out = append(*out, Finding{
			Pos:     pos,
			Code:    at.code,
			Entry:   path[0],
			Path:    append([]string(nil), path...),
			Message: at.msg,
		})
	}
	for _, c := range fact.calls {
		if visited[c.fn] {
			continue
		}
		visited[c.fn] = true
		a.visit(c.fn, append(path, qualName(c.fn)), visited, seen, out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// factFor computes (or returns the cached) facts of one function.
func (a *analyzer) factFor(fn *types.Func) *funcFact {
	if f, ok := a.facts[fn]; ok {
		return f
	}
	fact := &funcFact{}
	a.facts[fn] = fact // before the scan: direct recursion terminates
	decl := a.l.decls[fn]
	if decl == nil || decl.Body == nil {
		return fact
	}
	s := &scanner{a: a, fact: fact, flagged: map[ast.Node]bool{}}
	s.block(decl.Body)
	return fact
}

// scanner walks one function body collecting atoms and call sites.
type scanner struct {
	a    *analyzer
	fact *funcFact
	// flagged marks composite literals already reported through an
	// enclosing &lit so they are not double-counted.
	flagged map[ast.Node]bool
}

func (s *scanner) add(pos token.Pos, code, msg string) {
	if s.a.l.suppressed(pos, code) {
		return
	}
	s.fact.atoms = append(s.fact.atoms, atom{pos, code, msg})
}

func (s *scanner) block(body *ast.BlockStmt) {
	ast.Inspect(body, s.node)
}

// node is the ast.Inspect callback; returning false prunes the subtree.
func (s *scanner) node(n ast.Node) bool {
	info := s.a.l.info
	switch n := n.(type) {
	case *ast.SelectStmt:
		s.add(n.Pos(), CodeBlock, "select blocks on channel operations")
		return true

	case *ast.SendStmt:
		s.add(n.Arrow, CodeBlock, "channel send can block")
		return true

	case *ast.GoStmt:
		s.add(n.Pos(), CodeBlock, "goroutine spawn enters the scheduler")
		return true

	case *ast.DeferStmt:
		s.add(n.Pos(), CodeHidden, "defer allocates a frame record and hides control flow")
		return true

	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			s.add(n.Pos(), CodeBlock, "channel receive can block")
		case token.AND:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.flagged[lit] = true
				s.add(n.Pos(), CodeAlloc, "address of composite literal escapes to the heap")
			}
		}
		return true

	case *ast.CompositeLit:
		if s.flagged[n] {
			return true
		}
		if t := typeOf(info, n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.add(n.Pos(), CodeAlloc, "slice literal allocates its backing array")
			case *types.Map:
				s.add(n.Pos(), CodeAlloc, "map literal allocates")
			}
		}
		return true

	case *ast.FuncLit:
		s.add(n.Pos(), CodeAlloc, "function literal allocates a closure")
		// The literal's body runs whenever the value is invoked, which
		// the walk cannot place; the closure allocation is the finding.
		return false

	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(typeOf(info, n.X)) {
			s.add(n.OpPos, CodeAlloc, "string concatenation allocates")
		}
		return true

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMap(typeOf(info, ix.X)) {
				s.add(ix.Pos(), CodeHidden, "map write can grow the table")
			}
		}
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(typeOf(info, n.Lhs[0])) {
			s.add(n.TokPos, CodeAlloc, "string concatenation allocates")
		}
		return true

	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMap(typeOf(info, ix.X)) {
			s.add(n.Pos(), CodeHidden, "map write can grow the table")
		}
		return true

	case *ast.RangeStmt:
		if t := typeOf(info, n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				s.add(n.Pos(), CodeBlock, "range over channel blocks per receive")
			}
		}
		return true

	case *ast.CallExpr:
		s.call(n)
		return true
	}
	return true
}

// call classifies one call expression: conversion, builtin, static
// function/method, or opaque.
func (s *scanner) call(call *ast.CallExpr) {
	info := s.a.l.info
	fun := ast.Unparen(call.Fun)

	// Type conversion T(x): boxing and string<->[]byte copies allocate.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		s.conversion(call, tv.Type)
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			s.builtin(call, fun.Name)
		case *types.Func:
			s.static(call, obj, nil)
		case *types.Var:
			s.add(call.Pos(), CodeOpaque, "call through function value "+fun.Name)
		case nil:
			if !s.a.lenient {
				s.add(call.Pos(), CodeOpaque, "unresolved call to "+fun.Name)
			}
		}

	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call through a value.
			obj, _ := sel.Obj().(*types.Func)
			if obj == nil {
				s.add(call.Pos(), CodeOpaque, "call through method value")
				return
			}
			if types.IsInterface(sel.Recv()) {
				s.add(call.Pos(), CodeOpaque, "interface method dispatch: "+sel.Recv().String()+"."+obj.Name())
				return
			}
			s.static(call, obj, sel)
			return
		}
		// Package-qualified pkg.F.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			s.static(call, obj, nil)
		case *types.Var:
			s.add(call.Pos(), CodeOpaque, "call through function value "+fun.Sel.Name)
		default:
			if !s.a.lenient {
				s.add(call.Pos(), CodeOpaque, "unresolved call to "+fun.Sel.Name)
			}
		}

	case *ast.FuncLit:
		// Immediately invoked literal: the FuncLit node case already
		// flagged the closure allocation, which is the honest finding.

	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation f[T](...) — unwrap to the identifier.
		if id := instantiatedIdent(fun); id != nil {
			if obj, ok := info.Uses[id].(*types.Func); ok {
				s.static(call, obj, nil)
				return
			}
		}
		s.add(call.Pos(), CodeOpaque, "call through indexed expression")

	default:
		s.add(call.Pos(), CodeOpaque, "call through dynamic expression")
	}
}

func instantiatedIdent(fun ast.Expr) *ast.Ident {
	var x ast.Expr
	switch fun := fun.(type) {
	case *ast.IndexExpr:
		x = fun.X
	case *ast.IndexListExpr:
		x = fun.X
	}
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// conversion judges T(x).
func (s *scanner) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := typeOf(s.a.l.info, call.Args[0])
	if argT == nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(argT) && !isNilType(argT) {
		s.add(call.Pos(), CodeAlloc, "conversion boxes "+argT.String()+" into an interface")
		return
	}
	tu, au := target.Underlying(), argT.Underlying()
	if isString(tu) && isByteOrRuneSlice(au) || isByteOrRuneSlice(tu) && isString(au) {
		s.add(call.Pos(), CodeAlloc, "string/slice conversion copies to a new allocation")
	}
}

// builtin judges a builtin call.
func (s *scanner) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		s.add(call.Pos(), CodeAlloc, "append can grow the backing array")
	case "make":
		s.add(call.Pos(), CodeAlloc, "make allocates")
	case "new":
		s.add(call.Pos(), CodeAlloc, "new allocates")
	case "recover":
		s.add(call.Pos(), CodeHidden, "recover implies a deferred panic handler")
	case "delete":
		s.add(call.Pos(), CodeHidden, "map delete mutates the table")
	case "clear":
		if len(call.Args) == 1 && isMap(typeOf(s.a.l.info, call.Args[0])) {
			s.add(call.Pos(), CodeHidden, "map clear mutates the table")
		}
	case "print", "println":
		s.add(call.Pos(), CodeBlock, name+" writes to stderr")
	}
	// len/cap/copy/min/max/real/imag/complex/panic: pure or terminal.
}

// static judges a statically resolved function or method call.
func (s *scanner) static(call *ast.CallExpr, obj *types.Func, sel *types.Selection) {
	l := s.a.l
	if l.inModule(obj.Pkg()) {
		ann := s.a.anns[obj]
		if ann.ok && !ann.entry {
			return // sanctioned slow-path boundary: walk stops here
		}
		if decl := l.decls[obj]; decl != nil && decl.Body != nil {
			s.fact.calls = append(s.fact.calls, callSite{call.Pos(), obj})
			s.boxedArgs(call, obj)
			return
		}
		s.add(call.Pos(), CodeOpaque, qualName(obj)+" has no body to analyze")
		return
	}
	if obj.Pkg() == nil {
		// error.Error and friends from the universe scope.
		s.add(call.Pos(), CodeOpaque, "interface method dispatch: "+obj.Name())
		return
	}
	recv := ""
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = bareTypeName(sig.Recv().Type())
	}
	v := classifyStd(obj.Pkg().Path(), obj.Pkg().Name(), recv, obj.Name())
	if v.code != "" {
		s.add(call.Pos(), v.code, v.msg)
		return
	}
	s.boxedArgs(call, obj)
}

// boxedArgs flags concrete arguments passed to interface parameters of an
// otherwise clean call — the classic hidden allocation. Calls already
// flagged skip this to avoid pile-on.
func (s *scanner) boxedArgs(call *ast.CallExpr, obj *types.Func) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= n-1 {
			if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < n {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := typeOf(s.a.l.info, arg)
		if at == nil || types.IsInterface(at) || isNilType(at) {
			continue
		}
		s.add(arg.Pos(), CodeAlloc, "argument boxed into interface parameter of "+qualName(obj))
	}
}

// --- small type helpers ---

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isNilType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// bareTypeName strips pointers and returns the named type's name.
func bareTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// qualName renders pkg.Func or pkg.Type.Method.
func qualName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = bareTypeName(sig.Recv().Type()) + "." + name
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

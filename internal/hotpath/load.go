package hotpath

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks in-module packages with the stdlib toolchain only: no
// go/packages, no module downloads (the repo-wide convention, see
// internal/crit). In-module import paths resolve recursively to
// directories under the module root; everything else is delegated to the
// compiler "source" importer, which type-checks the standard library from
// source and therefore works on any toolchain that can build the repo.
type loader struct {
	root   string // module root directory ("" in single-file mode)
	module string // module path from go.mod ("" in single-file mode)
	fset   *token.FileSet
	std    types.Importer
	info   *types.Info

	pkgs    map[string]*types.Package // committed, by import path
	loading map[string]bool           // cycle guard
	files   map[string][]*ast.File    // by import path

	// decls indexes every loaded function/method declaration by its
	// type-checker object — the facts cache is keyed off these.
	decls map[*types.Func]*ast.FuncDecl
	// okAt carries statement-level //hotpath:ok directives per filename.
	okAt map[string]map[int]okDirective

	// lenient collects type errors instead of failing; set in single-file
	// mode where cross-file declarations are legitimately missing.
	lenient  bool
	typeErrs []error
}

func baseInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// newLoader builds a strict whole-program loader rooted at the module
// directory containing go.mod.
func newLoader(root string) (*loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		info:    baseInfo(),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
		files:   map[string][]*ast.File{},
		decls:   map[*types.Func]*ast.FuncDecl{},
		okAt:    map[string]map[int]okDirective{},
	}, nil
}

// newFileLoader builds a lenient loader for one already-parsed file.
func newFileLoader(fset *token.FileSet) *loader {
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		info:    baseInfo(),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
		files:   map[string][]*ast.File{},
		decls:   map[*types.Func]*ast.FuncDecl{},
		okAt:    map[string]map[int]okDirective{},
		lenient: true,
	}
}

// modulePath reads the module path out of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("hotpath: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("hotpath: no module line in %s/go.mod", root)
}

// inModule reports whether a type-checked package belongs to the module.
// Packages committed by checkFile (single-file mode, "file/" paths) count:
// their declarations are loaded and can be descended into.
func (l *loader) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if strings.HasPrefix(pkg.Path(), "file/") {
		return true
	}
	return l.inModulePath(pkg.Path())
}

func (l *loader) inModulePath(path string) bool {
	if l.module == "" {
		return false
	}
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// Import implements types.Importer so in-module imports recurse through
// the loader while everything else goes to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModulePath(path) {
		return l.load(path)
	}
	return l.std.Import(path)
}

// load parses and type-checks one in-module package directory.
func (l *loader) load(ipath string) (*types.Package, error) {
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	rel := strings.TrimPrefix(ipath, l.module)
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := l.check(ipath, files)
	if err != nil {
		return nil, err
	}
	l.commit(ipath, pkg, files)
	return pkg, nil
}

// checkFile type-checks one parsed file as its own package (lenient mode)
// and returns the import path it was committed under.
func (l *loader) checkFile(f *ast.File) string {
	ipath := "file/" + f.Name.Name
	pkg, _ := l.check(ipath, []*ast.File{f}) // lenient: errors collected
	l.commit(ipath, pkg, []*ast.File{f})
	return ipath
}

func (l *loader) check(ipath string, files []*ast.File) (*types.Package, error) {
	conf := types.Config{Importer: l, FakeImportC: true}
	if l.lenient {
		conf.Error = func(err error) { l.typeErrs = append(l.typeErrs, err) }
	}
	pkg, err := conf.Check(ipath, l.fset, files, l.info)
	if err != nil && !l.lenient {
		return nil, err
	}
	return pkg, nil
}

// commit records a checked package: its files, its function declarations,
// and its statement-level suppressions.
func (l *loader) commit(ipath string, pkg *types.Package, files []*ast.File) {
	l.pkgs[ipath] = pkg
	l.files[ipath] = files
	for _, f := range files {
		l.okAt[l.fset.Position(f.Pos()).Filename] = parseOkLines(l.fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := l.info.Defs[fd.Name].(*types.Func); ok {
				l.decls[obj] = fd
			}
		}
	}
}

// suppressed reports whether a //hotpath:ok directive on the finding's
// line or the line above waives the code.
func (l *loader) suppressed(pos token.Pos, code string) bool {
	p := l.fset.Position(pos)
	lines := l.okAt[p.Filename]
	if lines == nil {
		return false
	}
	if d, ok := lines[p.Line]; ok && d.covers(code) {
		return true
	}
	if d, ok := lines[p.Line-1]; ok && d.covers(code) {
		return true
	}
	return false
}

package hotpath

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) []Finding {
	t.Helper()
	fs, err := AnalyzeSource("fixture.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestFixturesFireExactlyTheirCode pins the one-fixture-one-code contract.
func TestFixturesFireExactlyTheirCode(t *testing.T) {
	for code, src := range fixtures() {
		fs := analyze(t, src)
		if len(fs) != 1 || fs[0].Code != code {
			t.Errorf("%s fixture: got %v", code, fs)
			continue
		}
		if len(fs[0].Path) == 0 || fs[0].Entry != "p.Hot" {
			t.Errorf("%s fixture: missing call path, got %+v", code, fs[0])
		}
	}
}

// TestCleanFixtureFiresNothing pins that a pure annotated path — including
// a //hotpath:ok boundary — produces zero findings.
func TestCleanFixtureFiresNothing(t *testing.T) {
	if fs := analyze(t, srcClean); len(fs) != 0 {
		t.Errorf("clean fixture fired: %v", fs)
	}
}

// TestCallPathReconstruction pins the entry -> ... -> leaf chain on a
// violation two frames below the entry.
func TestCallPathReconstruction(t *testing.T) {
	fs := analyze(t, srcDeep)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	f := fs[0]
	if f.Code != CodeAlloc {
		t.Errorf("code = %s, want CS020", f.Code)
	}
	want := []string{"p.Hot", "p.outer", "p.inner"}
	if len(f.Path) != len(want) {
		t.Fatalf("path = %v, want %v", f.Path, want)
	}
	for i := range want {
		if f.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", f.Path, want)
		}
	}
	if f.Func() != "p.inner" || f.Entry != "p.Hot" {
		t.Errorf("Func()=%s Entry=%s", f.Func(), f.Entry)
	}
	if !strings.Contains(f.String(), "p.Hot -> p.outer -> p.inner") {
		t.Errorf("String() lacks the path: %s", f.String())
	}
}

// TestOkDirectiveSuppression pins the statement-level waiver: a directive
// naming the finding's code silences it; one naming a different code does
// not.
func TestOkDirectiveSuppression(t *testing.T) {
	fs := analyze(t, srcSuppressed)
	if len(fs) != 1 || fs[0].Code != CodeHidden {
		t.Fatalf("want exactly the uncovered CS022, got %v", fs)
	}
}

// TestSharedHelperReportedOnce pins dedup across entries: one finding,
// attributed to the first entry in source order.
func TestSharedHelperReportedOnce(t *testing.T) {
	fs := analyze(t, srcShared)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	if fs[0].Entry != "p.HotA" {
		t.Errorf("entry = %s, want p.HotA (first in source order)", fs[0].Entry)
	}
}

// TestAnalyzeDirsCrossPackage proves the whole-program walk crosses
// package boundaries inside a module, with the path naming both packages.
func TestAnalyzeDirsCrossPackage(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fake.example/m\n\ngo 1.22\n")
	write("a/a.go", `package a

import "fake.example/m/b"

//hotpath:entry
func Hot(n int) int {
	return len(b.Leak(n))
}
`)
	write("b/b.go", `package b

func Leak(n int) []byte {
	return make([]byte, n)
}
`)
	fs, err := AnalyzeDirs(root, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Code != CodeAlloc {
		t.Fatalf("want one CS020, got %v", fs)
	}
	if got := strings.Join(fs[0].Path, " -> "); got != "a.Hot -> b.Leak" {
		t.Errorf("path = %q, want %q", got, "a.Hot -> b.Leak")
	}
	if filepath.Base(fs[0].Pos.Filename) != "b.go" {
		t.Errorf("finding anchored in %s, want b.go", fs[0].Pos.Filename)
	}
}

// TestTypeErrorIsError pins strict mode: a module that does not
// type-check is an analysis error, not a finding.
func TestTypeErrorIsError(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fake.example/m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "a"), 0o755); err != nil {
		t.Fatal(err)
	}
	bad := "package a\n\nfunc Broken() int { return undefinedIdent }\n"
	if err := os.WriteFile(filepath.Join(root, "a", "a.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeDirs(root, []string{"a"}); err == nil {
		t.Fatal("want a type error, got nil")
	}
}

// TestRepoFastPathsClean is the unit-level form of the standing gate: the
// annotated queue/AM/HI/kernel fast paths must stay alloc-free and
// non-blocking. When this fails, commguard-vet -all fails with the same
// findings — fix the path or mark a sanctioned boundary, don't delete the
// test.
func TestRepoFastPathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis; skipped with -short")
	}
	root := moduleRoot(t)
	fs, err := RepoFindings(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

// TestRepoHasEntries guards against the gate silently dissolving: if the
// annotations are ever dropped, zero findings would mean nothing.
func TestRepoHasEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis; skipped with -short")
	}
	// Count //hotpath:entry markers across the analyzed sources textually;
	// the analyzer itself must see at least as many live entries as the
	// queue's four batch ops plus Push/Pop.
	root := moduleRoot(t)
	count := 0
	for _, dir := range Sources() {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(root, dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			count += strings.Count(string(data), "//"+entryMarker)
		}
	}
	if count < 6 {
		t.Errorf("only %d //hotpath:entry annotations under Sources(); the purity gate has dissolved", count)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := moduleRootAbove(dir)
	if root == "" {
		t.Fatal("no go.mod above the test directory")
	}
	return root
}

func moduleRootAbove(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

package ecc

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Coder is a pluggable word-sized ECC backend. CommGuard protects two
// kinds of words with it — frame headers and the shared working-set
// pointers — and the paper's Table 3 charges every protected access a
// fixed number of "check/compute-ECC" suboperations. Making the backend
// an interface turns protection *strength* into an experimental axis:
// the (39,32) Hamming SEC-DED default reproduces the paper exactly,
// while stronger/cheaper codes shift the quality/overhead curves.
//
// Implementations must be immutable after construction: one Coder value
// is shared by every queue and guard module of a run, concurrently.
type Coder interface {
	// Name returns the canonical spec string (parseable by ParseCoder).
	Name() string
	// Width is the number of meaningful bits in a Codeword produced by
	// Encode. Fault injectors draw flip positions from [0, Width).
	// Width never exceeds 63: header codewords share a uint64 with the
	// queue's is-header tag bit (bit 63).
	Width() int
	// Encode computes the codeword protecting a 32-bit data word.
	Encode(data uint32) Codeword
	// Decode checks cw, correcting errors within the code's correction
	// radius. It returns the (possibly corrected) data word and the
	// classification of what it saw.
	Decode(cw Codeword) (uint32, CheckResult)
	// FlipBit returns cw with bit i inverted; i outside [0, Width)
	// panics (a silent no-op would mask injector bugs).
	FlipBit(cw Codeword, i int) Codeword
	// Cost returns the backend's Table 3 suboperation prices.
	Cost() CostModel
}

// CostModel parameterizes the paper's Table 3 suboperation accounting
// per backend. The Hamming defaults reproduce the table verbatim
// ("QM-get-new-workset: 10 check/compute-ECC operations"); other codes
// scale the prices by their parity-check count relative to Hamming's
// seven checks (six Hamming parities plus the overall SEC-DED bit).
type CostModel struct {
	// WorksetExchangeOps is charged per shared-pointer exchange when a
	// working set is published or returned (Table 3: 10 for Hamming).
	WorksetExchangeOps uint64
	// RefreshFillOps is charged when the producer refreshes its cached
	// view of the consumer's drained pointer (Table 3: 2).
	RefreshFillOps uint64
	// RefreshDrainOps is charged when the consumer refreshes its cached
	// view of the producer's filled pointer (Table 3: 1).
	RefreshDrainOps uint64
	// ScrubOps is charged for the extra re-encode that writes a
	// corrected shared-pointer word back to storage (scrubbing).
	ScrubOps uint64
	// HeaderEncodeOps is charged per header the Header Inserter encodes
	// (Table 3 prepare-header: 1 compute-ECC).
	HeaderEncodeOps uint64
	// HeaderDecodeOps is charged per header codeword the Alignment
	// Manager checks (Table 2 check-ECC: 1).
	HeaderDecodeOps uint64
}

// scaled multiplies every price by r (the backend's parity-check count
// relative to Hamming's seven).
func (c CostModel) scaled(r uint64) CostModel {
	return CostModel{
		WorksetExchangeOps: c.WorksetExchangeOps * r,
		RefreshFillOps:     c.RefreshFillOps * r,
		RefreshDrainOps:    c.RefreshDrainOps * r,
		ScrubOps:           c.ScrubOps * r,
		HeaderEncodeOps:    c.HeaderEncodeOps * r,
		HeaderDecodeOps:    c.HeaderDecodeOps * r,
	}
}

// hammingCost is Table 3 verbatim, plus the scrub re-encode price.
var hammingCost = CostModel{
	WorksetExchangeOps: 10,
	RefreshFillOps:     2,
	RefreshDrainOps:    1,
	ScrubOps:           1,
	HeaderEncodeOps:    1,
	HeaderDecodeOps:    1,
}

// hammingCoder adapts the package-level (39,32) SEC-DED functions to
// the Coder interface, bit-identically.
type hammingCoder struct{}

func (hammingCoder) Name() string    { return "hamming" }
func (hammingCoder) Width() int      { return TotalBits }
func (hammingCoder) Cost() CostModel { return hammingCost }

//hotpath:entry
func (hammingCoder) Encode(data uint32) Codeword { return Encode(data) }

//hotpath:entry
func (hammingCoder) Decode(cw Codeword) (uint32, CheckResult) { return Decode(cw) }

func (hammingCoder) FlipBit(cw Codeword, i int) Codeword { return FlipBit(cw, i) }

// Hamming is the default backend: the paper's (39,32) Hamming SEC-DED
// code, delegating to the package-level Encode/Decode/FlipBit.
var Hamming Coder = hammingCoder{}

// DefaultLDPCSpec is the spec "ldpc" resolves to: a (48,32) regular
// bit-flipping code with column weight 3 and row weight 9.
const DefaultLDPCSpec = "ldpc-48-3-9"

// ldpcCache memoizes constructed LDPC backends by spec so that the
// per-run queue construction path never repeats the (allocating,
// search-based) parity-check matrix build.
var ldpcCache sync.Map // string -> *LDPC

// ParseCoder resolves a coder spec string:
//
//	""               the default (hamming)
//	"hamming"        the (39,32) SEC-DED code
//	"ldpc"           DefaultLDPCSpec
//	"ldpc-N-WC-WR"   a regular (N,32) bit-flipping LDPC code with
//	                 column weight WC and row weight WR
//
// LDPC backends are memoized: repeated parses of the same spec return
// the same *LDPC value.
func ParseCoder(spec string) (Coder, error) {
	switch spec {
	case "", "hamming":
		return Hamming, nil
	case "ldpc":
		spec = DefaultLDPCSpec
	}
	if c, ok := ldpcCache.Load(spec); ok {
		return c.(*LDPC), nil
	}
	rest, ok := strings.CutPrefix(spec, "ldpc-")
	if !ok {
		return nil, fmt.Errorf("ecc: unknown coder spec %q (want \"hamming\", \"ldpc\" or \"ldpc-N-WC-WR\")", spec)
	}
	parts := strings.Split(rest, "-")
	if len(parts) != 3 {
		return nil, fmt.Errorf("ecc: malformed LDPC spec %q (want \"ldpc-N-WC-WR\")", spec)
	}
	var dims [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("ecc: malformed LDPC spec %q: %v", spec, err)
		}
		dims[i] = v
	}
	c, err := NewLDPC(dims[0], dims[1], dims[2])
	if err != nil {
		return nil, err
	}
	actual, _ := ldpcCache.LoadOrStore(spec, c)
	return actual.(*LDPC), nil
}

// MustCoder is ParseCoder for known-good specs.
func MustCoder(spec string) Coder {
	c, err := ParseCoder(spec)
	if err != nil {
		panic(err)
	}
	return c
}

package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	cases := []uint32{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x80000000, 0x55555555, 0xAAAAAAAA, 42}
	for _, d := range cases {
		got, res := Decode(Encode(d))
		if res != OK {
			t.Errorf("Decode(Encode(%#x)) result = %v, want OK", d, res)
		}
		if got != d {
			t.Errorf("Decode(Encode(%#x)) = %#x, want %#x", d, got, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(d uint32) bool {
		got, res := Decode(Encode(d))
		return got == d && res == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Every single-bit flip anywhere in the codeword must be corrected and the
// original data recovered. Exhaustive over all 39 positions for a sample of
// data words.
func TestSingleBitCorrection(t *testing.T) {
	words := []uint32{0, 0xFFFFFFFF, 0x12345678, 0xCAFEBABE, 1, 0x80000001}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		words = append(words, rng.Uint32())
	}
	for _, d := range words {
		cw := Encode(d)
		for bit := 0; bit < TotalBits; bit++ {
			got, res := Decode(FlipBit(cw, bit))
			if res != Corrected {
				t.Fatalf("data %#x bit %d: result = %v, want Corrected", d, bit, res)
			}
			if got != d {
				t.Fatalf("data %#x bit %d: decoded %#x, want %#x", d, bit, got, d)
			}
		}
	}
}

// Every double-bit flip must be flagged (never silently mis-corrected into
// an OK result). Exhaustive over all pairs for a sample of data words.
func TestDoubleBitDetection(t *testing.T) {
	words := []uint32{0, 0xFFFFFFFF, 0x12345678}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 8; i++ {
		words = append(words, rng.Uint32())
	}
	for _, d := range words {
		cw := Encode(d)
		for i := 0; i < TotalBits; i++ {
			for j := i + 1; j < TotalBits; j++ {
				_, res := Decode(FlipBit(FlipBit(cw, i), j))
				if res != Uncorrectable {
					t.Fatalf("data %#x bits (%d,%d): result = %v, want Uncorrectable", d, i, j, res)
				}
			}
		}
	}
}

// An out-of-range flip index is an injector bug; it must panic loudly
// instead of silently returning the codeword unchanged (the old no-op
// behavior made injectors believe errors landed that never did).
func TestFlipBitOutOfRange(t *testing.T) {
	cw := Encode(0xABCD)
	for _, i := range []int{-1, TotalBits, TotalBits + 24, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlipBit(cw, %d) did not panic", i)
				}
			}()
			FlipBit(cw, i)
		}()
	}
}

func TestCheckResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Error("CheckResult String() mismatch")
	}
	if CheckResult(99).String() != "invalid" {
		t.Error("unknown CheckResult should stringify as invalid")
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint32(i))
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}

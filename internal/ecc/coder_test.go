package ecc

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestParseCoder(t *testing.T) {
	for _, spec := range []string{"", "hamming"} {
		c, err := ParseCoder(spec)
		if err != nil {
			t.Fatalf("ParseCoder(%q): %v", spec, err)
		}
		if c != Hamming {
			t.Fatalf("ParseCoder(%q) != Hamming", spec)
		}
	}
	c, err := ParseCoder("ldpc")
	if err != nil {
		t.Fatalf("ParseCoder(ldpc): %v", err)
	}
	if c.Name() != DefaultLDPCSpec {
		t.Fatalf("ParseCoder(ldpc).Name() = %q, want %q", c.Name(), DefaultLDPCSpec)
	}
	explicit, err := ParseCoder(DefaultLDPCSpec)
	if err != nil {
		t.Fatalf("ParseCoder(%s): %v", DefaultLDPCSpec, err)
	}
	if c != explicit {
		t.Error("ParseCoder did not memoize the default LDPC backend")
	}
	for _, bad := range []string{"ldpc-", "ldpc-48-3", "ldpc-48-3-9-1", "ldpc-a-b-c", "reed-solomon", "ldpc-64-3-6", "ldpc-40-2-10", "ldpc-48-4-12"} {
		if _, err := ParseCoder(bad); err == nil {
			t.Errorf("ParseCoder(%q) accepted a bad spec", bad)
		}
	}
}

// The Hamming backend must be bit-identical to the package-level
// functions: every existing golden test depends on that.
func TestHammingCoderBitIdentical(t *testing.T) {
	if Hamming.Width() != TotalBits {
		t.Fatalf("Hamming.Width() = %d, want %d", Hamming.Width(), TotalBits)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 256; i++ {
		d := rng.Uint32()
		cw := Hamming.Encode(d)
		if cw != Encode(d) {
			t.Fatalf("Hamming.Encode(%#x) = %#x, want %#x", d, cw, Encode(d))
		}
		bit := rng.Intn(TotalBits)
		flipped := Hamming.FlipBit(cw, bit)
		if flipped != FlipBit(cw, bit) {
			t.Fatalf("Hamming.FlipBit mismatch at bit %d", bit)
		}
		gv, gr := Hamming.Decode(flipped)
		wv, wr := Decode(flipped)
		if gv != wv || gr != wr {
			t.Fatalf("Hamming.Decode mismatch: (%#x,%v) vs (%#x,%v)", gv, gr, wv, wr)
		}
	}
}

// The Hamming cost model is Table 3 verbatim; LDPC prices scale with
// the parity-check count relative to Hamming's seven checks.
func TestCostModels(t *testing.T) {
	hc := Hamming.Cost()
	want := CostModel{WorksetExchangeOps: 10, RefreshFillOps: 2, RefreshDrainOps: 1, ScrubOps: 1, HeaderEncodeOps: 1, HeaderDecodeOps: 1}
	if hc != want {
		t.Fatalf("Hamming cost = %+v, want %+v", hc, want)
	}
	for _, tc := range []struct {
		spec  string
		scale uint64
	}{
		{"ldpc-48-3-9", 3},  // m=16 -> ceil(16/7) = 3
		{"ldpc-40-3-15", 2}, // m=8  -> ceil(8/7)  = 2
	} {
		c := MustCoder(tc.spec)
		if got := c.Cost(); got != want.scaled(tc.scale) {
			t.Errorf("%s cost = %+v, want %+v", tc.spec, got, want.scaled(tc.scale))
		}
	}
}

// ldpcVariants are the geometries the experiments sweep; the tests
// verify the construction invariants and the correction/detection
// properties for each.
var ldpcVariants = []string{"ldpc-48-3-9", "ldpc-40-3-15"}

// The constructed matrix must be regular (every column weight wc, every
// row weight wr), have distinct columns, and annihilate every encoded
// codeword. Deterministic: the same spec always builds the same matrix.
func TestLDPCConstruction(t *testing.T) {
	for _, spec := range ldpcVariants {
		c := MustCoder(spec).(*LDPC)
		n, wc, wr := c.Params()
		m := n - 32
		if len(c.row) != m || len(c.col) != n {
			t.Fatalf("%s: matrix dims %dx%d, want %dx%d", spec, len(c.row), len(c.col), m, n)
		}
		for i, row := range c.row {
			if got := bits.OnesCount64(row); got != wr {
				t.Errorf("%s: row %d weight %d, want %d", spec, i, got, wr)
			}
			if row>>uint(n) != 0 {
				t.Errorf("%s: row %d has bits beyond width %d", spec, i, n)
			}
		}
		seen := map[uint32]bool{}
		for j, col := range c.col {
			if got := bits.OnesCount32(col); got != wc {
				t.Errorf("%s: column %d weight %d, want %d", spec, j, got, wc)
			}
			if seen[col] {
				t.Errorf("%s: duplicate column at %d", spec, j)
			}
			seen[col] = true
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 512; i++ {
			d := rng.Uint32()
			cw := c.Encode(d)
			if uint32(cw) != d {
				t.Fatalf("%s: Encode(%#x) not systematic in the low 32 bits", spec, d)
			}
			if uint64(cw)>>uint(n) != 0 {
				t.Fatalf("%s: Encode(%#x) has bits beyond width %d", spec, d, n)
			}
			if s := c.syndrome(uint64(cw)); s != 0 {
				t.Fatalf("%s: H * Encode(%#x) = %#x, want 0", spec, d, s)
			}
		}
		// Rebuilding from the spec must give the identical matrix (the
		// construction search is seeded from the parameters).
		again, err := NewLDPC(n, wc, wr)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", spec, err)
		}
		for i := range c.row {
			if c.row[i] != again.row[i] {
				t.Fatalf("%s: construction not deterministic (row %d differs)", spec, i)
			}
		}
	}
}

// Every single-bit flip anywhere in an LDPC codeword must decode
// Corrected back to the original word (the one-step majority-flip
// guarantee: distinct columns overlap in < wc checks).
func TestLDPCSingleBitCorrection(t *testing.T) {
	for _, spec := range ldpcVariants {
		c := MustCoder(spec)
		words := []uint32{0, 0xFFFFFFFF, 0x12345678, 0xCAFEBABE, 1, 0x80000001}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 64; i++ {
			words = append(words, rng.Uint32())
		}
		for _, d := range words {
			cw := c.Encode(d)
			for bit := 0; bit < c.Width(); bit++ {
				got, res := c.Decode(c.FlipBit(cw, bit))
				if res != Corrected {
					t.Fatalf("%s data %#x bit %d: result = %v, want Corrected", spec, d, bit, res)
				}
				if got != d {
					t.Fatalf("%s data %#x bit %d: decoded %#x, want %#x", spec, d, bit, got, d)
				}
			}
		}
	}
}

// Every double-bit flip must classify Uncorrectable — never OK (distinct
// columns keep the syndrome nonzero) and never Corrected (odd column
// weight: one flip cannot zero an even-weight syndrome). Exhaustive over
// all C(n,2) pairs for a sample of data words.
func TestLDPCDoubleBitDetection(t *testing.T) {
	for _, spec := range ldpcVariants {
		c := MustCoder(spec)
		words := []uint32{0, 0xFFFFFFFF, 0x12345678}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 8; i++ {
			words = append(words, rng.Uint32())
		}
		for _, d := range words {
			cw := c.Encode(d)
			for i := 0; i < c.Width(); i++ {
				for j := i + 1; j < c.Width(); j++ {
					_, res := c.Decode(c.FlipBit(c.FlipBit(cw, i), j))
					if res != Uncorrectable {
						t.Fatalf("%s data %#x bits (%d,%d): result = %v, want Uncorrectable", spec, d, i, j, res)
					}
				}
			}
		}
	}
}

func TestLDPCFlipBitOutOfRange(t *testing.T) {
	c := MustCoder("ldpc")
	cw := c.Encode(7)
	for _, i := range []int{-1, c.Width(), 63, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LDPC FlipBit(cw, %d) did not panic", i)
				}
			}()
			c.FlipBit(cw, i)
		}()
	}
}

// Header codewords share their uint64 with the queue's is-header tag at
// bit 63; no backend may produce codewords that wide.
func TestCoderWidthsBelowTagBit(t *testing.T) {
	for _, spec := range append([]string{"hamming"}, ldpcVariants...) {
		if w := MustCoder(spec).Width(); w > 63 {
			t.Errorf("%s width %d collides with the header tag bit", spec, w)
		}
	}
}

// Encode/Decode must stay allocation-free for every backend: they run
// on the queue's shared-pointer slow path and on CommGuard's per-header
// hot path.
func TestCoderAllocFree(t *testing.T) {
	for _, spec := range append([]string{"hamming"}, ldpcVariants...) {
		c := MustCoder(spec)
		cw := c.Encode(0xDEADBEEF)
		bad := c.FlipBit(cw, 5)
		if n := testing.AllocsPerRun(200, func() {
			cw = c.Encode(uint32(cw))
			c.Decode(cw)
			c.Decode(bad)
		}); n != 0 {
			t.Errorf("%s: %v allocs per encode/decode round, want 0", spec, n)
		}
	}
}

func BenchmarkLDPCEncode(b *testing.B) {
	c := MustCoder("ldpc")
	for i := 0; i < b.N; i++ {
		c.Encode(uint32(i))
	}
}

func BenchmarkLDPCDecodeClean(b *testing.B) {
	c := MustCoder("ldpc")
	cw := c.Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(cw)
	}
}

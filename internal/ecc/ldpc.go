package ecc

import (
	"fmt"
	"math/bits"
)

// LDPC is a regular (n,32) low-density parity-check code decoded by
// one-step majority bit flipping (Gallager's hard-decision algorithm,
// the decoder shape of the falcon_LDPC exemplar the ROADMAP cites).
// The parity-check matrix H is m×n with m = n-32, every column holding
// exactly wc ones and every row exactly wr ones.
//
// Construction guarantees (checked at build time, verified by tests):
//
//   - all columns distinct, so any two columns overlap in at most wc-1
//     rows; a single flipped bit is then the unique column with all wc
//     of its checks unsatisfied, and one-step majority flipping always
//     corrects it;
//   - wc odd, so the syndrome weight of a double error (even) can never
//     be zeroed by one flip (each flip changes the weight's parity by
//     wc): double errors never decode OK and never silently miscorrect
//     — they classify Uncorrectable, like Hamming's DED extension.
//
// Codewords are systematic in the permuted layout: data occupies bits
// 0..31, parity bits 32..n-1. n is capped at 63 so a header codeword
// never collides with the queue's is-header tag bit (bit 63).
type LDPC struct {
	n, m, wc, wr int
	name         string

	// row[i] is parity check i as a mask over the n codeword bits.
	row []uint64
	// col[j] is the set of checks covering codeword bit j, as a mask
	// over the m syndrome bits (m <= 31, so a uint32 holds it).
	col []uint32
	// enc[i] is the data-bit mask whose parity is codeword bit 32+i
	// (from the reduced row echelon form of H).
	enc []uint32

	cost CostModel
}

// ldpcAttempts bounds the randomized construction search. The
// deterministic seeded search succeeds within a handful of attempts
// for every sane geometry; the bound exists to turn a truly
// unsatisfiable parameter choice into an error instead of a spin.
const ldpcAttempts = 1000

// NewLDPC constructs a regular (n,32) LDPC backend with column weight
// wc and row weight wr. The geometry must satisfy 33+wc-1 <= n <= 63,
// wc odd and >= 3, wc <= m, and the regularity identity m*wr == n*wc.
// Construction is deterministic: the same parameters always yield the
// same matrix (the search RNG is seeded from them).
func NewLDPC(n, wc, wr int) (*LDPC, error) {
	m := n - 32
	switch {
	case n < 33 || n > 63:
		return nil, fmt.Errorf("ecc: LDPC length n=%d out of range [33,63]", n)
	case wc < 3 || wc%2 == 0:
		return nil, fmt.Errorf("ecc: LDPC column weight wc=%d must be odd and >= 3 (odd weight is what keeps double errors detectable)", wc)
	case wc > m:
		return nil, fmt.Errorf("ecc: LDPC column weight wc=%d exceeds parity checks m=%d", wc, m)
	case wr < 1 || m*wr != n*wc:
		return nil, fmt.Errorf("ecc: LDPC geometry not regular: m*wr=%d*%d != n*wc=%d*%d", m, wr, n, wc)
	}

	c := &LDPC{
		n: n, m: m, wc: wc, wr: wr,
		name: fmt.Sprintf("ldpc-%d-%d-%d", n, wc, wr),
		// Prices scale with the backend's parity computations relative
		// to Hamming's seven (six parities + the overall bit): each
		// protected-word check/compute evaluates m parities here.
		cost: hammingCost.scaled(uint64((m + 6) / 7)),
	}

	rng := splitmix(uint64(n)<<16 | uint64(wc)<<8 | uint64(wr))
	for attempt := 0; attempt < ldpcAttempts; attempt++ {
		if c.tryBuild(&rng) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("ecc: no regular rank-%d (%d,32) matrix with wc=%d wr=%d found in %d attempts", m, n, wc, wr, ldpcAttempts)
}

// splitmix is the SplitMix64 sequence, the repo's standard deterministic
// seeding primitive (fault.CoreSeed uses the same mix).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// tryBuild makes one randomized attempt at the column-by-column greedy
// construction, then validates distinct columns, full rank, and a
// systematic form. It fills c's tables and reports success.
func (c *LDPC) tryBuild(rng *splitmix) bool {
	n, m, wc, wr := c.n, c.m, c.wc, c.wr
	// cols[j] is column j as a mask over the m rows. Columns must be
	// distinct: overlap between two distinct weight-wc columns is at
	// most wc-1, which is the single-error correction guarantee. Small
	// geometries (few rows) collide often, so each column redraws
	// locally instead of restarting the whole attempt.
	cols := make([]uint32, n)
	load := make([]int, m) // ones placed in each row so far
	seen := map[uint32]bool{}
	cand := make([]int, 0, m)
	for j := 0; j < n; j++ {
		placed := false
		for draw := 0; draw < 64 && !placed; draw++ {
			cand = cand[:0]
			for i := 0; i < m; i++ {
				if load[i] < wr {
					cand = append(cand, i)
				}
			}
			if len(cand) < wc {
				return false // capacity dead end; restart the attempt
			}
			// Partial Fisher-Yates: pick wc distinct candidate rows.
			var col uint32
			for k := 0; k < wc; k++ {
				p := k + int(rng.next()%uint64(len(cand)-k))
				cand[k], cand[p] = cand[p], cand[k]
				col |= 1 << uint(cand[k])
			}
			if seen[col] {
				continue
			}
			seen[col] = true
			cols[j] = col
			for k := 0; k < wc; k++ {
				load[cand[k]]++
			}
			placed = true
		}
		if !placed {
			return false
		}
	}

	// Row masks from the columns.
	rowsH := make([]uint64, m)
	for j, col := range cols {
		for i := 0; i < m; i++ {
			if col&(1<<uint(i)) != 0 {
				rowsH[i] |= 1 << uint(j)
			}
		}
	}

	// Reduced row echelon form of a copy of H over GF(2). pivot[i] is
	// the pivot column of reduced row i; we need m pivots (full rank).
	red := append([]uint64(nil), rowsH...)
	pivot := make([]int, 0, m)
	r := 0
	for j := 0; j < n && r < m; j++ {
		sel := -1
		for i := r; i < m; i++ {
			if red[i]&(1<<uint(j)) != 0 {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		red[r], red[sel] = red[sel], red[r]
		for i := 0; i < m; i++ {
			if i != r && red[i]&(1<<uint(j)) != 0 {
				red[i] ^= red[r]
			}
		}
		pivot = append(pivot, j)
		r++
	}
	if r < m {
		return false // rank-deficient; retry
	}

	// Column permutation: free (non-pivot) columns become data bits
	// 0..31 in increasing original order; pivot column of reduced row i
	// becomes parity bit 32+i.
	isPivot := make([]bool, n)
	for _, p := range pivot {
		isPivot[p] = true
	}
	perm := make([]int, n) // original column -> permuted position
	d := 0
	for j := 0; j < n; j++ {
		if !isPivot[j] {
			perm[j] = d
			d++
		}
	}
	for i, p := range pivot {
		perm[p] = 32 + i
	}

	// Permuted sparse rows (for decoding) and per-bit check sets.
	c.row = make([]uint64, m)
	c.col = make([]uint32, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rowsH[i]&(1<<uint(j)) != 0 {
				c.row[i] |= 1 << uint(perm[j])
			}
		}
	}
	for j := 0; j < n; j++ {
		c.col[perm[j]] = cols[j]
	}
	// Encoding masks from the reduced rows: reduced row i reads
	// "parity bit 32+i = parity of these data bits" (all its non-pivot
	// entries are free columns).
	c.enc = make([]uint32, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j != pivot[i] && red[i]&(1<<uint(j)) != 0 {
				c.enc[i] |= 1 << uint(perm[j])
			}
		}
	}
	return true
}

// Name returns the canonical spec string.
func (c *LDPC) Name() string { return c.name }

// Width returns the codeword length n.
func (c *LDPC) Width() int { return c.n }

// Cost returns the backend's scaled Table 3 prices.
func (c *LDPC) Cost() CostModel { return c.cost }

// Params returns the code geometry (n, wc, wr).
func (c *LDPC) Params() (n, wc, wr int) { return c.n, c.wc, c.wr }

// Encode computes the systematic codeword for a 32-bit data word: the
// word itself in bits 0..31, one parity per reduced check in 32..n-1.
//
//hotpath:entry
func (c *LDPC) Encode(data uint32) Codeword {
	x := uint64(data)
	enc := c.enc
	for i := 0; i < len(enc); i++ {
		x |= uint64(bits.OnesCount32(enc[i]&data)&1) << uint(32+i)
	}
	return Codeword(x)
}

// syndrome evaluates all m parity checks of x; bit i set means check i
// is unsatisfied.
func (c *LDPC) syndrome(x uint64) uint32 {
	var s uint32
	row := c.row
	for i := 0; i < len(row); i++ {
		s |= uint32(bits.OnesCount64(row[i]&x)&1) << uint(i)
	}
	return s
}

// Decode checks cw with one-step majority bit flipping: if the syndrome
// is nonzero, the bit participating in the most unsatisfied checks is
// flipped; a clean syndrome after the flip is a corrected single error,
// anything else is uncorrectable (the data is returned as stored).
//
//hotpath:entry
func (c *LDPC) Decode(cw Codeword) (uint32, CheckResult) {
	x := uint64(cw)
	s := c.syndrome(x)
	if s == 0 {
		return uint32(x), OK
	}
	best, bestCnt := 0, -1
	col := c.col
	for j := 0; j < len(col); j++ {
		if cnt := bits.OnesCount32(col[j] & s); cnt > bestCnt {
			best, bestCnt = j, cnt
		}
	}
	fixed := x ^ (1 << uint(best))
	if c.syndrome(fixed) == 0 {
		return uint32(fixed), Corrected
	}
	return uint32(x), Uncorrectable
}

// FlipBit returns cw with bit i inverted, panicking for i outside
// [0, Width) like the package-level FlipBit.
func (c *LDPC) FlipBit(cw Codeword, i int) Codeword {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("ecc: FlipBit index %d out of range [0,%d)", i, c.n))
	}
	return cw ^ (1 << uint(i))
}

var _ Coder = (*LDPC)(nil)

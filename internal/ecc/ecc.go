// Package ecc implements a (39,32) Hamming single-error-correcting,
// double-error-detecting (SEC-DED) code over 32-bit words.
//
// CommGuard uses word-sized ECC in two places: frame headers inserted by the
// Header Inserter are end-to-end protected, and the Queue Manager protects
// the shared head/tail working-set pointers it exchanges with other cores
// (paper §4.1, §5.1). The code here is the classic extended Hamming code:
// six parity bits cover positions addressed by powers of two, plus one
// overall parity bit for double-error detection.
//
// The package-level Encode/Decode/FlipBit are that fixed Hamming code;
// the Coder interface (coder.go) makes the backend pluggable, with the
// Hamming singleton as the bit-identical default and a configurable
// bit-flipping LDPC family (ldpc.go) as the alternative.
package ecc

import "fmt"

// Codeword is a word-sized ECC codeword stored in the low bits of a
// uint64: 39 bits for the default Hamming backend, up to 63 for LDPC
// backends (Coder.Width names the meaningful bit count).
type Codeword uint64

// Layout of a Codeword (least significant bits first):
//
//	bits  0..31  data word
//	bits 32..37  Hamming parity bits p1,p2,p4,p8,p16,p32
//	bit  38      overall parity (SEC-DED extension)
const (
	dataBits    = 32
	hammingBits = 6
	// TotalBits is the number of meaningful bits in a Codeword.
	TotalBits = dataBits + hammingBits + 1 // 39
)

// CheckResult classifies the outcome of decoding a Codeword.
type CheckResult int

const (
	// OK means the codeword carried no detectable error.
	OK CheckResult = iota
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Uncorrectable means a double-bit (or worse) error was detected.
	Uncorrectable
)

func (r CheckResult) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "invalid"
}

// hammingPosition maps logical bit index (0-based within the 38-bit
// Hamming codeword, data+parity interleaved in the textbook layout) is not
// materialized; instead we use the standard trick of computing parity over
// data bits whose (position+1) has a given bit set, where data bit i is
// assigned Hamming position dataPos[i].
//
// Positions 1..38 in Hamming numbering; powers of two are parity positions.
// Data bits occupy the remaining positions in increasing order.
var dataPos = func() [dataBits]uint {
	var pos [dataBits]uint
	p := uint(1)
	i := 0
	for i < dataBits {
		// skip parity positions (powers of two)
		if p&(p-1) != 0 {
			pos[i] = p
			i++
		}
		p++
	}
	return pos
}()

// parityMask[j] is a mask over the 32 data bits covered by parity bit 2^j.
var parityMask = func() [hammingBits]uint32 {
	var masks [hammingBits]uint32
	for i := 0; i < dataBits; i++ {
		for j := 0; j < hammingBits; j++ {
			if dataPos[i]&(1<<uint(j)) != 0 {
				masks[j] |= 1 << uint(i)
			}
		}
	}
	return masks
}()

func parity32(x uint32) uint64 {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return uint64(x & 1)
}

// Encode computes the SEC-DED codeword for a 32-bit data word.
func Encode(data uint32) Codeword {
	cw := Codeword(data)
	var syndromeBits uint64
	for j := 0; j < hammingBits; j++ {
		syndromeBits |= parity32(data&parityMask[j]) << uint(j)
	}
	cw |= Codeword(syndromeBits) << dataBits
	// Overall parity covers data and Hamming parity bits.
	overall := parity32(data) ^ parity32(uint32(syndromeBits))
	cw |= Codeword(overall) << (dataBits + hammingBits)
	return cw
}

// Decode checks cw, correcting a single-bit error if present. It returns
// the (possibly corrected) data word and the classification of what it saw.
func Decode(cw Codeword) (uint32, CheckResult) {
	data := uint32(cw)
	storedParity := uint32(cw>>dataBits) & ((1 << hammingBits) - 1)
	storedOverall := uint64(cw>>(dataBits+hammingBits)) & 1

	var syndrome uint
	for j := 0; j < hammingBits; j++ {
		p := parity32(data & parityMask[j])
		if p != uint64(storedParity>>uint(j))&1 {
			syndrome |= 1 << uint(j)
		}
	}
	overall := parity32(data) ^ parity32(storedParity) ^ storedOverall

	switch {
	case syndrome == 0 && overall == 0:
		return data, OK
	case overall == 1:
		// Single-bit error somewhere; locate and correct it.
		if syndrome == 0 {
			// The overall parity bit itself flipped; data is intact.
			return data, Corrected
		}
		// Syndrome names the Hamming position of the flipped bit.
		if syndrome&(syndrome-1) == 0 {
			// A parity position flipped; data is intact.
			return data, Corrected
		}
		for i := 0; i < dataBits; i++ {
			if dataPos[i] == syndrome {
				return data ^ (1 << uint(i)), Corrected
			}
		}
		// Syndrome points outside the codeword: treat as uncorrectable.
		return data, Uncorrectable
	default:
		// syndrome != 0 but overall parity matches: double-bit error.
		return data, Uncorrectable
	}
}

// FlipBit returns cw with bit i (0 <= i < TotalBits) inverted. It is used
// by fault injectors to model storage/transmission errors on protected
// words. An out-of-range index panics: a silent no-op here would make an
// injector believe it applied an error that never landed, skewing every
// downstream error-rate measurement.
func FlipBit(cw Codeword, i int) Codeword {
	if i < 0 || i >= TotalBits {
		panic(fmt.Sprintf("ecc: FlipBit index %d out of range [0,%d)", i, TotalBits))
	}
	return cw ^ (1 << uint(i))
}

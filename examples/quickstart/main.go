// Quickstart: build a tiny streaming pipeline, run it on error-prone
// cores, and watch CommGuard convert catastrophic misalignment into
// bounded data errors.
//
// The pipeline squares a ramp of numbers through two filters. We run it
// three times: error-free, with errors over a reliable-but-unchecked
// queue, and with errors under CommGuard — then compare how much of the
// output survived.
package main

import (
	"fmt"
	"log"
	"time"

	"commguard/internal/commguard"
	"commguard/internal/fault"
	"commguard/internal/queue"
	"commguard/internal/stream"
)

func buildPipeline(n int) (*stream.Graph, *stream.Sink) {
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(i)
	}
	g := stream.NewGraph()
	square := stream.NewFuncFilter("square", 4, 4, 50, func(ctx *stream.Ctx) {
		for i := 0; i < 4; i++ {
			v := ctx.Pop(0)
			ctx.Push(0, v*v)
		}
	})
	sink := stream.NewSink("collect", 8)
	if _, err := g.Chain(stream.NewSource("ramp", 8, data), square, sink); err != nil {
		log.Fatal(err)
	}
	return g, sink
}

func run(name string, transport stream.Transport, mtbe float64) []uint32 {
	g, sink := buildPipeline(4096)
	cfg := stream.EngineConfig{Transport: transport}
	if mtbe > 0 {
		model := fault.DefaultModel(true)
		cfg.NewInjector = func(core int) *fault.Injector {
			return fault.NewInjector(mtbe, fault.CoreSeed(2015, core), model)
		}
	}
	eng, err := stream.NewEngine(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	out := sink.Collected()
	correct := 0
	for i, v := range out {
		if v == uint32(i*i) {
			correct++
		}
	}
	fmt.Printf("%-24s %5d/%d items correct (%.1f%%), %d instructions\n",
		name, correct, 4096, 100*float64(correct)/4096, stats.TotalInstructions())
	return out
}

func main() {
	qcfg := queue.Config{WorkingSets: 4, WorkingSetUnits: 64, ProtectPointers: true, Timeout: 100 * time.Millisecond}

	fmt.Println("quickstart: 3-stage pipeline squaring 4096 numbers, MTBE 3000 instructions/core")
	fmt.Println()
	run("error-free", &stream.PlainTransport{Queue: qcfg}, 0)
	run("errors, no CommGuard", &stream.PlainTransport{Queue: qcfg}, 3000)
	tr := commguard.NewTransport(qcfg)
	run("errors, CommGuard", tr, 3000)

	s := tr.Stats()
	fmt.Printf("\nCommGuard activity: %d headers inserted, %d realignments, %d items padded, %d discarded\n",
		s.HI.HeadersInserted, s.AM.Realignments, s.AM.PaddedItems, s.AM.DiscardedItems)
	fmt.Println("\nWithout CommGuard a single miscounted push shifts every later item;")
	fmt.Println("with CommGuard the damage ends at the next frame boundary.")
}

// framesweep: the frame-size ablation (paper §5.4, Figs. 10–13) on mp3.
// Larger frames mean fewer headers and less serialization, but each
// misalignment then corrupts more data before the next realignment point.
// This example sweeps frame scales x1..x8 at a fixed error rate and
// reports both sides of the trade-off.
package main

import (
	"fmt"
	"log"

	"commguard/internal/apps"
	"commguard/internal/sim"
)

func main() {
	builder, _ := apps.ByName("mp3")
	const mtbe = 256e3
	const seeds = 3

	fmt.Printf("mp3 under CommGuard at MTBE %.0fk, frame scales x1..x8 (%d seeds)\n\n", mtbe/1000, seeds)
	fmt.Printf("%-8s %12s %12s %14s %12s\n", "scale", "SNR (dB)", "headers", "realignments", "loss items")
	for _, scale := range []int{1, 2, 4, 8} {
		var snr float64
		var headers, realigns, loss uint64
		for s := int64(0); s < seeds; s++ {
			inst, err := builder.New()
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(inst, sim.Config{
				Protection: sim.CommGuard, MTBE: mtbe, Seed: 100 + s, FrameScale: scale,
			}, inst.Reference)
			if err != nil {
				log.Fatal(err)
			}
			snr += res.Quality
			headers += res.Guard.HI.HeadersInserted
			realigns += res.Guard.AM.Realignments
			loss += res.Guard.AM.DataLossItems()
		}
		fmt.Printf("x%-7d %12.2f %12d %14d %12d\n",
			scale, snr/seeds, headers/seeds, realigns/seeds, loss/seeds)
	}
	fmt.Println("\nHeaders fall linearly with frame size; quality is flat-to-worse because a")
	fmt.Println("single realignment now pads or discards a larger frame (the paper keeps the")
	fmt.Println("StreamIt-default frame size for exactly this reason, §7.2.2).")
}

// jpegdemo: decode a JPEG-compressed test image on 10 error-prone cores
// and report PSNR under each protection configuration — the paper's
// motivating example (Fig. 3) as a runnable program. It also writes the
// decoded images as PGM/PPM files so the degradation is visible.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"commguard/internal/apps"
	"commguard/internal/media"
	"commguard/internal/sim"
)

func main() {
	outDir := "jpegdemo-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	builder, _ := apps.ByName("jpeg")
	const mtbe = 1e6 // the paper's Fig. 3 error rate: 1M instructions/core

	fmt.Printf("jpeg decode on error-prone cores (MTBE %.0fk instructions/core)\n\n", mtbe/1000)
	fmt.Printf("%-18s %10s  %s\n", "configuration", "PSNR (dB)", "output")

	for _, p := range []sim.Protection{sim.ErrorFree, sim.SoftwareQueue, sim.ReliableQueue, sim.CommGuard} {
		inst, err := builder.New()
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{Protection: p, MTBE: mtbe, Seed: 7}
		res, err := sim.Run(inst, cfg, inst.Reference)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(outDir, fmt.Sprintf("%s.ppm", p))
		if err := media.WritePPMFile(path, media.PixelsToImage(res.Output, 640, 192)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10.1f  %s\n", p, res.Quality, path)
		if p == sim.CommGuard && res.Guard != nil {
			fmt.Printf("%-18s %10s  %d realignments, %d padded, %d discarded items\n",
				"", "", res.Guard.AM.Realignments, res.Guard.AM.PaddedItems, res.Guard.AM.DiscardedItems)
		}
	}
	fmt.Println("\nOpen the .ppm files to compare: the unguarded error-prone runs shred the")
	fmt.Println("image, while CommGuard confines every error to the frames it occurred in.")
}

// beamformer: run the audiobeamformer benchmark across error rates and
// show how output quality (SNR vs the error-free run) degrades and how
// much realignment CommGuard performed. audiobeamformer has the paper's
// smallest frames (one sample per frame computation), making it the
// stress case for header overhead.
package main

import (
	"fmt"
	"log"

	"commguard/internal/apps"
	"commguard/internal/sim"
)

func main() {
	builder, _ := apps.ByName("audiobeamformer")

	// Error-free reference output.
	refInst, err := builder.New()
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := sim.Run(refInst, sim.Config{Protection: sim.ErrorFree}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ref := refRes.Output

	fmt.Println("audiobeamformer under CommGuard: SNR vs error-free run")
	fmt.Printf("%-12s %10s %14s %10s\n", "MTBE", "SNR (dB)", "realignments", "data loss")
	for _, mtbe := range []float64{64e3, 256e3, 1024e3, 4096e3} {
		inst, err := builder.New()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(inst, sim.Config{Protection: sim.CommGuard, MTBE: mtbe, Seed: 11}, ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.1f %14d %9.4f%%\n",
			fmt.Sprintf("%.0fk", mtbe/1000), res.Quality, res.Guard.AM.Realignments, 100*res.DataLossRatio())
	}

	// Show the header cost that per-sample frames incur.
	inst, err := builder.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(inst, sim.Config{Protection: sim.CommGuard}, ref)
	if err != nil {
		log.Fatal(err)
	}
	qt := res.Run.QueueTotals()
	fmt.Printf("\nheader traffic (error-free run): %d header stores vs %d item stores on the queues\n",
		qt.HeaderStores, qt.ItemStores)
	fmt.Println("(one header per frame; audiobeamformer's frames are single samples, the")
	fmt.Println("paper's worst case for memory-event overhead — Fig. 12)")
}

// doall: the paper's §9 observation that CommGuard subsumes ERSA's
// programming model — do-all parallelism over unreliable workers — as an
// ordinary StreamIt split-join, with *cooperating* unreliable cores
// instead of one fully-reliable supervisor.
//
// A pool of identical workers computes cube roots of independent tasks.
// We sweep the error rate and report how many results stay within 1% of
// the true value, with and without CommGuard.
package main

import (
	"fmt"
	"log"
	"math"

	"commguard/internal/apps"
	"commguard/internal/sim"
)

func main() {
	cfg := apps.DoAllConfig{Workers: 4, Tasks: 4096, IterationsPerTask: 12}
	build := func() (*apps.Instance, error) { return apps.NewDoAll(cfg) }

	correct := func(out []float64) int {
		n := 0
		for i, got := range out {
			x := 1 + 999*math.Abs(math.Sin(0.37*float64(i)))
			want := math.Cbrt(x)
			if math.Abs(got-want) <= 0.01*want {
				n++
			}
		}
		return n
	}

	fmt.Printf("do-all pool: %d workers, %d independent tasks\n\n", cfg.Workers, cfg.Tasks)
	fmt.Printf("%-10s %22s %22s\n", "MTBE", "correct (CommGuard)", "correct (unguarded)")
	for _, mtbe := range []float64{16e3, 64e3, 256e3} {
		results := map[sim.Protection]int{}
		for _, p := range []sim.Protection{sim.CommGuard, sim.ReliableQueue} {
			inst, err := build()
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(inst, sim.Config{Protection: p, MTBE: mtbe, Seed: 17}, nil)
			if err != nil {
				log.Fatal(err)
			}
			results[p] = correct(res.Output)
		}
		fmt.Printf("%-10s %17d/%d %17d/%d\n",
			fmt.Sprintf("%.0fk", mtbe/1000),
			results[sim.CommGuard], cfg.Tasks,
			results[sim.ReliableQueue], cfg.Tasks)
	}
	fmt.Println("\nEach worker is idempotent and stateless (the do-all contract), so a")
	fmt.Println("misaligned result stream is pure waste without CommGuard: the round-robin")
	fmt.Println("collector merges answers under the wrong task indices from the first")
	fmt.Println("miscount on. CommGuard realigns the pool at every frame boundary.")
}

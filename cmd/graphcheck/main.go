// Command graphcheck statically verifies stream graphs against their
// CommGuard/queue configuration, reporting CG001–CG006 findings (see
// internal/check). It exits non-zero only on error-severity findings, so
// warnings (degraded-but-running configurations) do not break CI.
//
// Examples:
//
//	graphcheck -all                 verify every built-in benchmark
//	graphcheck -app jpeg            verify one benchmark
//	graphcheck -app mp3 -iterations 100000000000 -suppress CG005
//	graphcheck -all -json           emit the shared diagnostic schema for CI
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"commguard/internal/apps"
	"commguard/internal/check"
	"commguard/internal/diag"
	"commguard/internal/queue"
)

func main() {
	appName := flag.String("app", "", "benchmark to verify (see -all for the full set)")
	all := flag.Bool("all", false, "verify every built-in benchmark")
	iterations := flag.Int("iterations", 0, "run length in steady-state iterations (0 = derive from source tapes)")
	frameScale := flag.Int("framescale", 1, "PPU frame enlargement factor")
	sets := flag.Int("sets", 0, "queue working sets (0 = default geometry)")
	units := flag.Int("units", 0, "units per working set (0 = default geometry)")
	timeout := flag.Duration("timeout", queue.DefaultConfig().Timeout, "queue blocking timeout (0 = block forever)")
	suppress := flag.String("suppress", "", "comma-separated diagnostic codes to skip (e.g. CG005,CG006)")
	jsonOut := flag.Bool("json", false, "emit the shared diagnostic JSON schema (internal/diag)")
	flag.Parse()

	if *all == (*appName != "") {
		fmt.Fprintln(os.Stderr, "graphcheck: pass exactly one of -app NAME or -all")
		os.Exit(2)
	}

	cfg := check.DefaultConfig()
	cfg.Iterations = *iterations
	cfg.FrameScale = *frameScale
	if *sets > 0 || *units > 0 {
		cfg.Queue = queue.Config{WorkingSets: *sets, WorkingSetUnits: *units, Timeout: *timeout}
	} else {
		cfg.Queue.Timeout = *timeout
	}
	if *suppress != "" {
		cfg.Suppress = strings.Split(*suppress, ",")
	}

	var builders []apps.Builder
	if *all {
		builders = apps.AllBuiltin()
	} else {
		b, ok := apps.ByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphcheck: unknown benchmark %q\n", *appName)
			os.Exit(2)
		}
		builders = []apps.Builder{b}
	}

	if *jsonOut {
		var ds []diag.Diagnostic
		failed := false
		for _, b := range builders {
			appDs, hadErrors, err := collect(b, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphcheck: %v\n", err)
				os.Exit(2)
			}
			ds = append(ds, appDs...)
			failed = failed || hadErrors
		}
		if err := diag.NewReport("graphcheck", ds).Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "graphcheck: %v\n", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	failed := false
	for _, b := range builders {
		if verify(b, cfg) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// collect checks one benchmark and converts its report to the shared
// diagnostic schema; the bool reports error-severity findings.
func collect(b apps.Builder, cfg check.Config) ([]diag.Diagnostic, bool, error) {
	inst, err := b.New()
	if err != nil {
		return nil, false, fmt.Errorf("building %s: %w", b.Name, err)
	}
	report := check.Run(inst.Graph, cfg)
	var ds []diag.Diagnostic
	for _, d := range report.Diagnostics {
		out := diag.Diagnostic{
			Tool:     "graphcheck",
			Code:     d.Code,
			Severity: d.Severity.String(),
			App:      b.Name,
			Message:  d.Message,
			Fix:      d.Fix,
		}
		switch {
		case d.Edge != nil:
			out.Edge = fmt.Sprintf("%s -> %s", d.Edge.Src.Name(), d.Edge.Dst.Name())
		case d.Node != nil:
			out.Node = d.Node.Name()
		}
		ds = append(ds, out)
	}
	return ds, report.HasErrors(), nil
}

// verify checks one benchmark and prints its report; it returns true when
// the report contains error-severity findings.
func verify(b apps.Builder, cfg check.Config) bool {
	start := time.Now()
	inst, err := b.New()
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphcheck: building %s: %v\n", b.Name, err)
		return true
	}
	report := check.Run(inst.Graph, cfg)
	status := "ok"
	switch {
	case report.HasErrors():
		status = fmt.Sprintf("FAIL (%d errors, %d warnings)", len(report.Errors()), len(report.Warnings()))
	case !report.Clean():
		status = fmt.Sprintf("ok (%d warnings)", len(report.Warnings()))
	}
	fmt.Printf("%-18s %d nodes, %d edges  %-26s %s\n",
		b.Name, len(inst.Graph.Nodes), len(inst.Graph.Edges), status, time.Since(start).Round(time.Millisecond))
	for _, d := range report.Diagnostics {
		fmt.Printf("  %s\n", d)
	}
	return report.HasErrors()
}

// Command commguard-vet is the repo's one-stop static verifier: it runs the
// graph checker (CG001–CG006), the soundness edge verdicts (CS001–CS003),
// the criticality dataflow (CM001–CM003), the repo linter (RL001–RL006),
// the queue atomics discipline (CS010–CS012) and the hot-path purity
// analysis (CS020–CS023) in a single invocation, merges everything into
// the shared diagnostic schema (internal/diag), and applies the checked-in
// baseline: error-severity findings always fail, warnings fail only when
// they are not in the baseline. With -all, baseline entries matching no
// current finding are reported as stale; -fail-stale turns that into a
// failure (the CI gate) and -prune-baseline rewrites the file without
// them.
//
// Examples:
//
//	commguard-vet -all                          verify everything, human output
//	commguard-vet -app jpeg                     verify one benchmark's graph
//	commguard-vet -all -json                    fatal findings in the diag schema
//	commguard-vet -all -sarif vet.sarif         also write SARIF 2.1.0 for CI upload
//	commguard-vet -all -protection software-queue   classify edges as unguarded
//	commguard-vet -all -write-baseline          accept current warnings
//	commguard-vet -all -prune-baseline          drop stale baseline entries
//	commguard-vet -all -fail-stale              fail on stale baseline entries
//
// Exit status: 0 clean, 1 unbaselined findings (or stale baseline entries
// under -fail-stale), 2 usage or analysis error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"commguard/internal/apps"
	"commguard/internal/check"
	"commguard/internal/crit"
	"commguard/internal/diag"
	"commguard/internal/hotpath"
	"commguard/internal/lint"
	"commguard/internal/soundness"
	"commguard/internal/stream"
)

func main() {
	appName := flag.String("app", "", "benchmark graph to verify (default: repo-wide checks only with -all)")
	all := flag.Bool("all", false, "verify every built-in benchmark plus the repo-wide analyses")
	jsonOut := flag.Bool("json", false, "emit fatal findings in the shared diagnostic JSON schema")
	sarifPath := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this path (baselined findings marked suppressed)")
	baselinePath := flag.String("baseline", "", "baseline file (default <root>/vet.baseline.json)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline accepting every current warning, then verify against it")
	pruneBaseline := flag.Bool("prune-baseline", false, "rewrite the baseline dropping entries matching no current finding (needs -all)")
	failStale := flag.Bool("fail-stale", false, "exit 1 when the baseline has stale entries (needs -all)")
	protection := flag.String("protection", "commguard", "platform protection level for edge verdicts (error-free, software-queue, reliable-queue, commguard)")
	root := flag.String("root", "", "repo root (default: walk up to the enclosing go.mod)")
	flag.Parse()

	if *all == (*appName != "") {
		fmt.Fprintln(os.Stderr, "commguard-vet: pass exactly one of -app NAME or -all")
		os.Exit(2)
	}
	if *writeBaseline && *pruneBaseline {
		fmt.Fprintln(os.Stderr, "commguard-vet: -write-baseline and -prune-baseline are mutually exclusive")
		os.Exit(2)
	}
	if (*pruneBaseline || *failStale) && !*all {
		fmt.Fprintln(os.Stderr, "commguard-vet: -prune-baseline and -fail-stale need -all (staleness is only meaningful against the full finding set)")
		os.Exit(2)
	}
	guarded, ok := guardedFor(*protection)
	if !ok {
		fmt.Fprintf(os.Stderr, "commguard-vet: unknown protection %q (error-free, software-queue, reliable-queue, commguard)\n", *protection)
		os.Exit(2)
	}

	r := *root
	if r == "" {
		var err error
		r, err = crit.FindRepoRoot()
		if err != nil {
			fatal(err)
		}
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(r, "vet.baseline.json")
	}

	var builders []apps.Builder
	if *all {
		builders = apps.AllBuiltin()
	} else {
		b, ok := apps.ByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "commguard-vet: unknown benchmark %q\n", *appName)
			os.Exit(2)
		}
		builders = []apps.Builder{b}
	}

	ds, err := run(r, builders, *all, guarded)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline {
		if err := writeBaselineFile(*baselinePath, ds); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "commguard-vet: wrote %s\n", *baselinePath)
	}
	bl, err := diag.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}

	// Staleness: only -all sees the full finding set, so only -all can
	// judge whether a baseline entry still matches anything.
	var stale []string
	if *all {
		stale = bl.Stale(ds)
	}
	if *pruneBaseline && len(stale) > 0 {
		bl = bl.Prune(stale)
		f, err := os.Create(*baselinePath)
		if err != nil {
			fatal(err)
		}
		err = bl.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "commguard-vet: pruned %d stale entries from %s\n", len(stale), *baselinePath)
		stale = nil
	}
	for _, fp := range stale {
		fmt.Fprintf(os.Stderr, "commguard-vet: stale baseline entry (matches no current finding): %s\n", fp)
	}

	fatalDs, suppressed := bl.Partition(ds)

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fatal(err)
		}
		err = diag.ToSARIF("commguard-vet", ds, bl.Suppresses).Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := diag.NewReport("commguard-vet", fatalDs).Write(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range fatalDs {
			fmt.Println(render(d))
		}
		errs := 0
		for _, d := range fatalDs {
			if d.Severity == "error" {
				errs++
			}
		}
		fmt.Printf("commguard-vet: %d findings (%d errors, %d warnings), %d suppressed by baseline, protection %s\n",
			len(fatalDs), errs, len(fatalDs)-errs, len(suppressed), *protection)
	}
	if len(fatalDs) > 0 {
		os.Exit(1)
	}
	if *failStale && len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "commguard-vet: %d stale baseline entries (-fail-stale); run commguard-vet -all -prune-baseline\n", len(stale))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "commguard-vet: %v\n", err)
	os.Exit(2)
}

// guardedFor maps a protection level to whether edges count as guarded for
// the soundness verdicts. Only CommGuard realigns frames (HI/AM), so only
// it renders proven critical flows safe; ErrorFree is trivially safe
// because no errors occur at all. ECC on queue pointers (ReliableQueue)
// protects management state but not payload sequencing.
func guardedFor(name string) (bool, bool) {
	switch name {
	case "commguard", "error-free":
		return true, true
	case "software-queue", "reliable-queue":
		return false, true
	}
	return false, false
}

// run executes every analysis family and merges the diagnostics. The
// graph-scoped families (graphcheck + soundness edge verdicts) run per
// benchmark; the source-scoped families (critmap, repolint, atomics) run
// once over the repo and only with -all, so -app stays cheap and focused.
func run(root string, builders []apps.Builder, repoWide, guarded bool) ([]diag.Diagnostic, error) {
	m, err := crit.AnalyzeRepo(root)
	if err != nil {
		return nil, fmt.Errorf("crit analysis: %w", err)
	}
	fact := &soundness.Fact{Crit: m}
	if guarded {
		fact.Guarded = func(*stream.Edge) bool { return true }
	}

	var ds []diag.Diagnostic
	cfg := check.DefaultConfig()
	cfg.Facts = map[string]any{soundness.FactKey: fact}
	for _, b := range builders {
		inst, err := b.New()
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", b.Name, err)
		}
		for _, d := range check.Run(inst.Graph, cfg).Diagnostics {
			tool := "graphcheck"
			if strings.HasPrefix(d.Code, "CS") {
				tool = "soundness"
			}
			out := diag.Diagnostic{
				Tool:     tool,
				Code:     d.Code,
				Severity: d.Severity.String(),
				App:      b.Name,
				Message:  d.Message,
				Fix:      d.Fix,
			}
			switch {
			case d.Edge != nil:
				out.Edge = fmt.Sprintf("%s -> %s", d.Edge.Src.Name(), d.Edge.Dst.Name())
			case d.Node != nil:
				out.Node = d.Node.Name()
			}
			ds = append(ds, out)
		}
	}

	if !repoWide {
		return ds, nil
	}

	// Criticality dataflow violations (filters deriving control flow from
	// popped data) are errors: they are the statically-detectable
	// catastrophic pattern regardless of graph wiring.
	for _, fi := range m.Findings() {
		ds = append(ds, diag.Diagnostic{
			Tool:     "critmap",
			Code:     fi.Code,
			Severity: "error",
			File:     relTo(root, fi.Pos.Filename),
			Line:     fi.Pos.Line,
			Col:      fi.Pos.Column,
			Node:     fi.Filter,
			Message:  fi.Message,
		})
	}

	// Repo lint. RL007 is skipped here: it is the single-file wrapping of
	// the atomics discipline, which vet runs below in cross-file form —
	// reporting both would double every finding.
	lfs, err := lint.Run(root)
	if err != nil {
		return nil, fmt.Errorf("repolint: %w", err)
	}
	for _, f := range lfs {
		if f.Rule == "RL007" || f.Rule == "RL008" {
			continue
		}
		ds = append(ds, diag.Diagnostic{
			Tool:     "repolint",
			Code:     f.Rule,
			Severity: "warning",
			File:     relTo(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}

	// Hot-path purity (CS020–CS023): whole-program walk from the
	// //hotpath:entry annotations, registered as repo-scoped check rules.
	// RL008 (repolint's single-file wrapping of the same analysis) is
	// skipped in the lint loop above for the same reason as RL007.
	hfs, err := hotpath.RepoFindings(root)
	if err != nil {
		return nil, fmt.Errorf("hotpath: %w", err)
	}
	hcfg := check.Config{Facts: map[string]any{hotpath.FactKey: &hotpath.Fact{Findings: hfs}}}
	for _, d := range check.RunRepo(hcfg).Diagnostics {
		ds = append(ds, diag.Diagnostic{
			Tool:     "hotpath",
			Code:     d.Code,
			Severity: d.Severity.String(),
			File:     relTo(root, d.File),
			Line:     d.Line,
			Col:      d.Col,
			Node:     d.Symbol,
			Message:  d.Message,
			Fix:      d.Fix,
		})
	}

	// Queue atomics discipline, cross-file. Ownership breaches and lock
	// bracket violations (CS010/CS011) are proven races — errors. A missing
	// annotation (CS012) is uncertainty, baselineable like the other
	// uncertain verdicts.
	afs, err := soundness.CheckAtomicsDir(filepath.Join(root, "internal", "queue"))
	if err != nil {
		return nil, fmt.Errorf("atomics: %w", err)
	}
	for _, f := range afs {
		sev := "error"
		if f.Code == "CS012" {
			sev = "warning"
		}
		ds = append(ds, diag.Diagnostic{
			Tool:     "soundness",
			Code:     f.Code,
			Severity: sev,
			File:     relTo(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	return ds, nil
}

// relTo makes file paths repo-relative so baseline fingerprints and SARIF
// artifact URIs are stable across checkouts.
func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

func render(d diag.Diagnostic) string {
	var sb strings.Builder
	switch {
	case d.File != "":
		fmt.Fprintf(&sb, "%s:%d:%d: ", d.File, d.Line, d.Col)
	case d.Edge != "":
		fmt.Fprintf(&sb, "%s: edge %s: ", d.App, d.Edge)
	case d.Node != "":
		fmt.Fprintf(&sb, "%s: node %s: ", d.App, d.Node)
	default:
		fmt.Fprintf(&sb, "%s: ", d.App)
	}
	fmt.Fprintf(&sb, "[%s] %s: %s", d.Code, d.Severity, d.Message)
	if d.Fix != "" {
		fmt.Fprintf(&sb, " (fix: %s)", d.Fix)
	}
	return sb.String()
}

func writeBaselineFile(path string, ds []diag.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = diag.NewBaseline(ds).Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

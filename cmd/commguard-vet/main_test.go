package main

// CLI contract tests: every static-analysis command honors -json with
// schema-valid output and the shared exit-code convention — 0 clean, 1
// findings, 2 usage error. The binaries are built once per test run and
// exercised end to end against the real repo.

import (
	"bytes"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"commguard/internal/diag"
)

var (
	repoRoot string
	binDir   string
)

func TestMain(m *testing.M) {
	var err error
	repoRoot, err = filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		panic(err)
	}
	binDir, err = os.MkdirTemp("", "commguard-cli")
	if err != nil {
		panic(err)
	}
	build := exec.Command("go", "build", "-o", binDir,
		"./cmd/graphcheck", "./cmd/critmap", "./cmd/repolint", "./cmd/commguard-vet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(binDir)
		panic("building CLIs: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// runCLI executes a built binary from the repo root and returns stdout and
// the exit code; exit 2 paths print to stderr, which is returned too.
func runCLI(t *testing.T, name string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Dir = repoRoot
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return outBuf.String(), errBuf.String(), code
}

func assertReport(t *testing.T, name, stdout string, code int) {
	t.Helper()
	if code != 0 && code != 1 {
		t.Fatalf("%s: exit %d, want 0 or 1 (a findings exit, not usage)", name, code)
	}
	if err := diag.ValidateReport([]byte(stdout)); err != nil {
		t.Errorf("%s -json output invalid: %v\noutput: %.500s", name, err, stdout)
	}
}

func TestGraphcheckJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "graphcheck", "-all", "-json")
	assertReport(t, "graphcheck", stdout, code)
}

func TestCritmapJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "critmap", "-all", "-json")
	assertReport(t, "critmap", stdout, code)
}

func TestRepolintJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "repolint", "-json", "./...")
	assertReport(t, "repolint", stdout, code)
}

func TestVetJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "commguard-vet", "-all", "-json")
	assertReport(t, "commguard-vet", stdout, code)
}

func TestVetCleanUnderCheckedInBaseline(t *testing.T) {
	// The acceptance bar: paper-default protection, checked-in baseline,
	// zero unbaselined findings on the seven builtin graphs.
	stdout, stderr, code := runCLI(t, "commguard-vet", "-all")
	if code != 0 {
		t.Errorf("vet -all: exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestVetBaselineDoesNotMaskViolations(t *testing.T) {
	// Under software-queue protection the fft critical flow becomes a
	// CS001 violation; the baseline (errors are never suppressible) must
	// not hide it even though every current warning is accepted.
	stdout, _, code := runCLI(t, "commguard-vet", "-all", "-protection", "software-queue", "-json")
	if code != 1 {
		t.Fatalf("vet -protection software-queue: exit %d, want 1", code)
	}
	if !bytes.Contains([]byte(stdout), []byte("CS001")) {
		t.Errorf("expected a CS001 violation in output:\n%.800s", stdout)
	}
}

func TestVetSARIFValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.sarif")
	_, stderr, code := runCLI(t, "commguard-vet", "-all", "-sarif", path)
	if code != 0 {
		t.Fatalf("vet -sarif: exit %d\nstderr: %s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := diag.ValidateSARIF(data); err != nil {
		t.Errorf("SARIF output invalid: %v", err)
	}
}

// copyRepoSources clones the repo's Go sources (plus go.mod and the
// checked-in baseline) into a temp dir so a test can mutate hot paths and
// baselines without touching the real tree.
func copyRepoSources(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(repoRoot, path)
		if err != nil || rel == "." {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return fs.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(d.Name(), ".go") && d.Name() != "go.mod" && d.Name() != "vet.baseline.json" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestVetHotpathLifecycle drives the CS020 gate end to end on a scratch
// copy of the repo: an injected allocation on an annotated hot path fails
// vet with a call path; -write-baseline accepts it as a warning (the
// baselined-warnings-only state exits 0); removing the allocation leaves a
// stale baseline entry, which -fail-stale turns into a failure and
// -prune-baseline repairs.
func TestVetHotpathLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated whole-repo vet runs; skipped with -short")
	}
	scratch := copyRepoSources(t)
	dct := filepath.Join(scratch, "internal", "dsp", "dct.go")
	orig, err := os.ReadFile(dct)
	if err != nil {
		t.Fatal(err)
	}
	injected := append(append([]byte{}, orig...), []byte(`
//hotpath:entry
func vetInjectedHot(n int) int {
	return len(make([]float64, n))
}
`)...)
	if err := os.WriteFile(dct, injected, 0o644); err != nil {
		t.Fatal(err)
	}

	// 1. The injected allocation is an unbaselined CS020 with a call path.
	stdout, stderr, code := runCLI(t, "commguard-vet", "-all", "-root", scratch, "-json")
	if code != 1 {
		t.Fatalf("injected alloc: exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if err := diag.ValidateReport([]byte(stdout)); err != nil {
		t.Fatalf("-json output invalid: %v", err)
	}
	if !strings.Contains(stdout, "CS020") || !strings.Contains(stdout, "vetInjectedHot") {
		t.Fatalf("expected a CS020 naming vetInjectedHot:\n%.800s", stdout)
	}

	// 2. -write-baseline accepts the warning; with every finding baselined,
	// vet is clean.
	_, stderr, code = runCLI(t, "commguard-vet", "-all", "-root", scratch, "-write-baseline")
	if code != 0 {
		t.Fatalf("-write-baseline: exit %d, want 0\nstderr: %s", code, stderr)
	}
	stdout, _, code = runCLI(t, "commguard-vet", "-all", "-root", scratch)
	if code != 0 || !strings.Contains(stdout, "0 findings") {
		t.Fatalf("baselined warnings should exit 0:\nexit %d, %s", code, stdout)
	}

	// 3. Removing the allocation strands the baseline entry; -fail-stale is
	// the CI gate for exactly that.
	if err := os.WriteFile(dct, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runCLI(t, "commguard-vet", "-all", "-root", scratch, "-fail-stale")
	if code != 1 || !strings.Contains(stderr, "stale baseline") {
		t.Fatalf("-fail-stale on stranded entry: exit %d, want 1\nstderr: %s", code, stderr)
	}

	// 4. -prune-baseline repairs the file; the gate passes again.
	_, stderr, code = runCLI(t, "commguard-vet", "-all", "-root", scratch, "-prune-baseline")
	if code != 0 || !strings.Contains(stderr, "pruned") {
		t.Fatalf("-prune-baseline: exit %d, want 0\nstderr: %s", code, stderr)
	}
	_, stderr, code = runCLI(t, "commguard-vet", "-all", "-root", scratch, "-fail-stale")
	if code != 0 {
		t.Fatalf("post-prune -fail-stale: exit %d, want 0\nstderr: %s", code, stderr)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"graphcheck"},                                    // neither -app nor -all
		{"graphcheck", "-app", "nope"},                    // unknown benchmark
		{"critmap"},                                       // neither -app nor -all
		{"critmap", "-app", "nope"},                       // unknown benchmark
		{"repolint", "does/not/exist.go"},                 // unreadable pattern
		{"commguard-vet"},                                 // neither -app nor -all
		{"commguard-vet", "-app", "nope"},                 // unknown benchmark
		{"commguard-vet", "-all", "-protection", "bogus"}, // unknown level
		{"commguard-vet", "-all", "-write-baseline", "-prune-baseline"}, // mutually exclusive
		{"commguard-vet", "-app", "fft", "-prune-baseline"},             // staleness needs -all
		{"commguard-vet", "-app", "fft", "-fail-stale"},                 // staleness needs -all
	}
	for _, c := range cases {
		_, stderr, code := runCLI(t, c[0], c[1:]...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %.200s)", c, code, stderr)
		}
	}
}

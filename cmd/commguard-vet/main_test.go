package main

// CLI contract tests: every static-analysis command honors -json with
// schema-valid output and the shared exit-code convention — 0 clean, 1
// findings, 2 usage error. The binaries are built once per test run and
// exercised end to end against the real repo.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"commguard/internal/diag"
)

var (
	repoRoot string
	binDir   string
)

func TestMain(m *testing.M) {
	var err error
	repoRoot, err = filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		panic(err)
	}
	binDir, err = os.MkdirTemp("", "commguard-cli")
	if err != nil {
		panic(err)
	}
	build := exec.Command("go", "build", "-o", binDir,
		"./cmd/graphcheck", "./cmd/critmap", "./cmd/repolint", "./cmd/commguard-vet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(binDir)
		panic("building CLIs: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// runCLI executes a built binary from the repo root and returns stdout and
// the exit code; exit 2 paths print to stderr, which is returned too.
func runCLI(t *testing.T, name string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Dir = repoRoot
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return outBuf.String(), errBuf.String(), code
}

func assertReport(t *testing.T, name, stdout string, code int) {
	t.Helper()
	if code != 0 && code != 1 {
		t.Fatalf("%s: exit %d, want 0 or 1 (a findings exit, not usage)", name, code)
	}
	if err := diag.ValidateReport([]byte(stdout)); err != nil {
		t.Errorf("%s -json output invalid: %v\noutput: %.500s", name, err, stdout)
	}
}

func TestGraphcheckJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "graphcheck", "-all", "-json")
	assertReport(t, "graphcheck", stdout, code)
}

func TestCritmapJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "critmap", "-all", "-json")
	assertReport(t, "critmap", stdout, code)
}

func TestRepolintJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "repolint", "-json", "./...")
	assertReport(t, "repolint", stdout, code)
}

func TestVetJSONContract(t *testing.T) {
	stdout, _, code := runCLI(t, "commguard-vet", "-all", "-json")
	assertReport(t, "commguard-vet", stdout, code)
}

func TestVetCleanUnderCheckedInBaseline(t *testing.T) {
	// The acceptance bar: paper-default protection, checked-in baseline,
	// zero unbaselined findings on the seven builtin graphs.
	stdout, stderr, code := runCLI(t, "commguard-vet", "-all")
	if code != 0 {
		t.Errorf("vet -all: exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestVetBaselineDoesNotMaskViolations(t *testing.T) {
	// Under software-queue protection the fft critical flow becomes a
	// CS001 violation; the baseline (errors are never suppressible) must
	// not hide it even though every current warning is accepted.
	stdout, _, code := runCLI(t, "commguard-vet", "-all", "-protection", "software-queue", "-json")
	if code != 1 {
		t.Fatalf("vet -protection software-queue: exit %d, want 1", code)
	}
	if !bytes.Contains([]byte(stdout), []byte("CS001")) {
		t.Errorf("expected a CS001 violation in output:\n%.800s", stdout)
	}
}

func TestVetSARIFValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.sarif")
	_, stderr, code := runCLI(t, "commguard-vet", "-all", "-sarif", path)
	if code != 0 {
		t.Fatalf("vet -sarif: exit %d\nstderr: %s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := diag.ValidateSARIF(data); err != nil {
		t.Errorf("SARIF output invalid: %v", err)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"graphcheck"},                                    // neither -app nor -all
		{"graphcheck", "-app", "nope"},                    // unknown benchmark
		{"critmap"},                                       // neither -app nor -all
		{"critmap", "-app", "nope"},                       // unknown benchmark
		{"repolint", "does/not/exist.go"},                 // unreadable pattern
		{"commguard-vet"},                                 // neither -app nor -all
		{"commguard-vet", "-app", "nope"},                 // unknown benchmark
		{"commguard-vet", "-all", "-protection", "bogus"}, // unknown level
	}
	for _, c := range cases {
		_, stderr, code := runCLI(t, c[0], c[1:]...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %.200s)", c, code, stderr)
		}
	}
}

// Command experiments regenerates the paper's evaluation figures (§7).
//
// Example:
//
//	experiments -fig all -quick        # fast reduced sweep
//	experiments -fig 10               # full Figure 10 sweep (slow)
//	experiments -fig 8 -seeds 3
//	experiments -quick -benchjson BENCH_hotpath.json   # hot-path perf snapshot
//
// Long sweeps can run as resilient campaigns:
//
//	experiments -fig all -journal sweep.jsonl             # journal completions
//	experiments -fig all -journal sweep.jsonl -resume     # skip finished jobs
//	experiments -fig all -journal s.jsonl -job-timeout 2m -retries 2
//
// With -journal, every completed sweep job is appended (fsynced) to the
// JSONL journal; a killed campaign rerun with -resume replays journaled
// results instead of re-executing them. -job-timeout arms a per-job
// watchdog that cancels a wedged simulation (tearing down its goroutines,
// blocked queue operations included) and retries it with capped
// exponential backoff; after -retries extra attempts the job is classified
// as hung and the campaign moves on. SIGINT drains in-flight jobs,
// flushes the journal and exits; resume with the same journal to finish.
// Use -sequential for bit-reproducible runs (required if a resumed
// campaign must aggregate identically to an uninterrupted one).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"commguard/internal/campaign"
	"commguard/internal/experiments"
	"commguard/internal/obs"
)

func main() {
	var (
		fig          = flag.String("fig", "all", "figure to regenerate: 3|7|8|9|10|11|12|13|14|abft|detectlat|coder|sensitivity|critweight|all")
		quickF       = flag.Bool("quick", false, "reduced sweep (smaller workloads, fewer seeds)")
		seeds        = flag.Int("seeds", 0, "override seeds per point (paper: 5)")
		csvDir       = flag.String("csv", "", "with -fig all: also write per-figure CSVs to this directory")
		mdPath       = flag.String("md", "", "with -fig all: also write a Markdown report to this path")
		bench        = flag.String("benchjson", "", "measure hot-path transit variants plus a RunAll wall-clock and write the JSON snapshot to this path; also writes the kernel bench as the sibling BENCH_kernels.json (combine with -quick for the reduced sweep)")
		benchKernels = flag.String("benchkernels", "", "measure only the kernel firing-path variants (per-item vs batch vs abft) and write the JSON snapshot to this path")
		verbose      = flag.Bool("v", false, "print per-figure start/finish lines with elapsed time and job counts to stderr")
		trace        = flag.String("trace", "", "record an event trace of Figure 7's representative run and write <base>.trace.json/.jsonl/.snapshot.json")
		listen       = flag.String("listen", "", "serve live sweep progress counters over HTTP at this address (GET /debug/vars, OpenMetrics at GET /metrics), e.g. :6060")
		flightDir    = flag.String("flight-dir", "", "arm a flight recorder on detection-latency sweep jobs: trace rings run continuously and are dumped into this directory when a job trips a PPU watchdog refusal or is classified as hung")

		journal    = flag.String("journal", "", "append completed sweep jobs to this JSONL journal (campaign mode: watchdog, retries, graceful SIGINT)")
		resume     = flag.Bool("resume", false, "with -journal: skip jobs already journaled, replaying their stored results")
		jobTimeout = flag.Duration("job-timeout", 0, "with -journal: cancel a sweep job still running after this long and retry it (0 disables the watchdog)")
		retries    = flag.Int("retries", 2, "with -journal: extra attempts for a timed-out job before classifying it as hung")
		sequential = flag.Bool("sequential", false, "bit-reproducible single-goroutine simulations (resumed campaigns aggregate identically)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quickF {
		opts = experiments.QuickOptions()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	opts.Out = os.Stdout
	opts.Verbose = *verbose
	opts.TracePath = *trace
	opts.Sequential = *sequential
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opts.FlightDir = *flightDir
	}
	if *listen != "" {
		opts.Progress = obs.Live()
		obs.ListenAndServe(*listen, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format, a...)
		})
		fmt.Fprintf(os.Stderr, "progress counters at http://%s/debug/vars\n", *listen)
	}

	var (
		jnl    *campaign.Journal
		totals *campaign.Stats
	)
	if *journal != "" {
		var err error
		jnl, err = campaign.Open(*journal, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer jnl.Close()
		if *resume && jnl.Len() > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d jobs already journaled in %s\n", jnl.Len(), *journal)
		}

		interrupt := make(chan struct{})
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "\ninterrupt: draining in-flight jobs and flushing the journal (^C again to abort hard)")
			close(interrupt)
			<-sig // second signal: give up on draining
			os.Exit(130)
		}()

		workers := opts.Parallel
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		totals = &campaign.Stats{}
		opts.Campaign = &campaign.Runner{
			Parallel:   workers,
			JobTimeout: *jobTimeout,
			Retries:    *retries,
			Journal:    jnl,
			Progress:   opts.Progress,
			Interrupt:  interrupt,
			Stats:      totals,
			OnHung: func(he *campaign.HungError) {
				fmt.Fprintf(os.Stderr, "campaign: %v\n", he)
				if *flightDir != "" {
					fmt.Fprintf(os.Stderr, "campaign: flight-recorder dumps for hung jobs land in %s\n", *flightDir)
				}
			},
		}
	} else if *resume || *jobTimeout != 0 {
		fmt.Fprintln(os.Stderr, "experiments: -resume and -job-timeout require -journal")
		os.Exit(2)
	}

	if *benchKernels != "" {
		res, err := experiments.WriteKernelBenchJSON(*benchKernels, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		res.Render(func(format string, a ...any) { fmt.Printf(format, a...) })
		fmt.Printf("kernel bench written to %s\n", *benchKernels)
		return
	}
	if *bench != "" {
		kpath := kernelBenchPath(*bench)
		kres, err := experiments.WriteKernelBenchJSON(kpath, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		res, err := experiments.WriteHotpathJSON(*bench, opts, 4_000_000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
		kres.Render(func(format string, a ...any) { fmt.Printf(format, a...) })
		fmt.Println()
		res.Render(func(format string, a ...any) { fmt.Printf(format, a...) })
		fmt.Printf("hot-path snapshot written to %s, kernel bench to %s\n", *bench, kpath)
		return
	}

	err := run(*fig, opts, *csvDir, *mdPath)
	if totals != nil {
		s := totals.Snapshot()
		fmt.Fprintf(os.Stderr, "campaign: %d completed, %d skipped (journal), %d retried, %d hung\n",
			s.Completed, s.Skipped, s.Retried, s.Hung)
	}
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			if jnl != nil {
				jnl.Close() // flush before reporting
			}
			fmt.Fprintf(os.Stderr, "experiments: interrupted; rerun with -journal %s -resume to finish\n", *journal)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// kernelBenchPath derives the kernel-bench sibling of the hot-path
// snapshot path: BENCH_hotpath.json -> BENCH_kernels.json in the same
// directory, or <path>.kernels.json when the name doesn't match.
func kernelBenchPath(benchPath string) string {
	dir, name := filepath.Split(benchPath)
	if name == "BENCH_hotpath.json" {
		return filepath.Join(dir, "BENCH_kernels.json")
	}
	return benchPath + ".kernels.json"
}

func run(fig string, opts experiments.Options, csvDir, mdPath string) error {
	if fig == "all" {
		all, err := experiments.RunAll(opts)
		if err != nil {
			return err
		}
		if csvDir != "" {
			if err := experiments.WriteCSV(csvDir, all); err != nil {
				return err
			}
			fmt.Printf("\nCSV data written to %s\n", csvDir)
		}
		if mdPath != "" {
			f, err := os.Create(mdPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.WriteMarkdown(f, all); err != nil {
				return err
			}
			fmt.Printf("Markdown report written to %s\n", mdPath)
		}
		return nil
	}

	var err error
	switch fig {
	case "3":
		_, err = experiments.Figure3(opts)
	case "7":
		_, err = experiments.Figure7(opts)
	case "8":
		_, err = experiments.Figure8(opts)
	case "9":
		_, err = experiments.Figure9(opts)
	case "10":
		_, err = experiments.Figure10(opts)
	case "11":
		_, err = experiments.Figure11(opts)
	case "12":
		_, err = experiments.Figure12(opts)
	case "13":
		_, err = experiments.Figure13(opts, 3)
	case "14":
		_, err = experiments.Figure14(opts)
	case "abft":
		_, err = experiments.FigureABFT(opts)
	case "detectlat":
		_, err = experiments.FigureDetectLat(opts)
	case "coder":
		_, err = experiments.FigureCoder(opts)
	case "sensitivity":
		_, err = experiments.ClassSensitivity(opts, "mp3", 128e3)
	case "critweight":
		_, err = experiments.CritWeighting(opts, 128e3)
	default:
		err = fmt.Errorf("unknown figure %q", fig)
	}
	return err
}

// Command experiments regenerates the paper's evaluation figures (§7).
//
// Example:
//
//	experiments -fig all -quick        # fast reduced sweep
//	experiments -fig 10               # full Figure 10 sweep (slow)
//	experiments -fig 8 -seeds 3
//	experiments -quick -benchjson BENCH_hotpath.json   # hot-path perf snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"commguard/internal/experiments"
	"commguard/internal/obs"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 3|7|8|9|10|11|12|13|14|sensitivity|critweight|all")
		quickF = flag.Bool("quick", false, "reduced sweep (smaller workloads, fewer seeds)")
		seeds  = flag.Int("seeds", 0, "override seeds per point (paper: 5)")
		csvDir = flag.String("csv", "", "with -fig all: also write per-figure CSVs to this directory")
		mdPath = flag.String("md", "", "with -fig all: also write a Markdown report to this path")
		bench   = flag.String("benchjson", "", "measure hot-path transit variants plus a RunAll wall-clock and write the JSON snapshot to this path (combine with -quick for the reduced sweep)")
		verbose = flag.Bool("v", false, "print per-figure start/finish lines with elapsed time and job counts to stderr")
		trace   = flag.String("trace", "", "record an event trace of Figure 7's representative run and write <base>.trace.json/.jsonl/.snapshot.json")
		listen  = flag.String("listen", "", "serve live sweep progress counters over HTTP at this address (GET /debug/vars), e.g. :6060")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quickF {
		opts = experiments.QuickOptions()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	opts.Out = os.Stdout
	opts.Verbose = *verbose
	opts.TracePath = *trace
	if *listen != "" {
		opts.Progress = obs.Live()
		obs.ListenAndServe(*listen, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format, a...)
		})
		fmt.Fprintf(os.Stderr, "progress counters at http://%s/debug/vars\n", *listen)
	}

	if *bench != "" {
		res, err := experiments.WriteHotpathJSON(*bench, opts, 4_000_000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
		res.Render(func(format string, a ...any) { fmt.Printf(format, a...) })
		fmt.Printf("hot-path snapshot written to %s\n", *bench)
		return
	}

	if err := run(*fig, opts, *csvDir, *mdPath); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig string, opts experiments.Options, csvDir, mdPath string) error {
	if fig == "all" {
		all, err := experiments.RunAll(opts)
		if err != nil {
			return err
		}
		if csvDir != "" {
			if err := experiments.WriteCSV(csvDir, all); err != nil {
				return err
			}
			fmt.Printf("\nCSV data written to %s\n", csvDir)
		}
		if mdPath != "" {
			f, err := os.Create(mdPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.WriteMarkdown(f, all); err != nil {
				return err
			}
			fmt.Printf("Markdown report written to %s\n", mdPath)
		}
		return nil
	}

	var err error
	switch fig {
	case "3":
		_, err = experiments.Figure3(opts)
	case "7":
		_, err = experiments.Figure7(opts)
	case "8":
		_, err = experiments.Figure8(opts)
	case "9":
		_, err = experiments.Figure9(opts)
	case "10":
		_, err = experiments.Figure10(opts)
	case "11":
		_, err = experiments.Figure11(opts)
	case "12":
		_, err = experiments.Figure12(opts)
	case "13":
		_, err = experiments.Figure13(opts, 3)
	case "14":
		_, err = experiments.Figure14(opts)
	case "sensitivity":
		_, err = experiments.ClassSensitivity(opts, "mp3", 128e3)
	case "critweight":
		_, err = experiments.CritWeighting(opts, 128e3)
	default:
		err = fmt.Errorf("unknown figure %q", fig)
	}
	return err
}

// Command benchdiff gates performance regressions: it diffs a freshly
// generated perf snapshot (BENCH_hotpath.json / BENCH_kernels.json
// shape) against the committed baseline, per metric, and fails only on
// large regressions.
//
// Usage:
//
//	benchdiff [-warn 0.25] [-fatal 2.0] baseline.json fresh.json
//
// Metrics are compared on the intersection of the two snapshots (the
// quick and full profiles measure different variant sets). A metric
// slower than baseline by more than -warn (fraction) prints a WARN
// line; at or beyond -fatal times baseline it is a hard failure.
// Absolute ns/item varies across machines, so the default bands are
// wide: warnings absorb runner noise, and only a 2x slowdown — an
// algorithmic regression, not jitter — breaks the build.
//
// Exit status: 0 when no metric is fatal (warnings included), 1 when at
// least one metric regressed fatally, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"commguard/internal/diag"
)

func main() {
	var (
		warn  = flag.Float64("warn", 0.25, "fractional slowdown above which a metric warns (0.25 = 1.25x baseline)")
		fatal = flag.Float64("fatal", 2.0, "ratio to baseline at which a metric fails the gate (2.0 = 2x)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-warn frac] [-fatal ratio] baseline.json fresh.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	d, err := diag.CompareBench(baseline, fresh, *warn, *fatal)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("%-28s %12s %12s %8s  %s\n", "metric", "baseline", "fresh", "ratio", "level")
	for _, delta := range d.Deltas {
		level := delta.Level
		if level != "ok" {
			level = map[string]string{"warn": "WARN", "fatal": "FATAL"}[level]
		}
		fmt.Printf("%-28s %10.2fns %10.2fns %7.2fx  %s\n",
			delta.Metric, delta.BaselineNs, delta.FreshNs, delta.Ratio, level)
	}
	for _, m := range d.MissingInFresh {
		fmt.Printf("%-28s only in baseline (not compared)\n", m)
	}
	for _, m := range d.MissingInBaseline {
		fmt.Printf("%-28s only in fresh (not compared)\n", m)
	}
	if d.Warns > 0 {
		fmt.Printf("benchdiff: %d metric(s) above the %.0f%% warn band\n", d.Warns, 100**warn)
	}
	if d.Fatals > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %.1fx baseline\n", d.Fatals, *fatal)
		os.Exit(1)
	}
}

// Command streamgraph inspects a benchmark's stream graph: topology,
// per-edge rates, and the steady-state schedule the balance equations
// produce (multiplicities and frame sizes per edge).
//
// Example:
//
//	streamgraph -app jpeg
package main

import (
	"flag"
	"fmt"
	"os"

	"commguard/internal/apps"
	"commguard/internal/check"
	"commguard/internal/fault"
	"commguard/internal/rely"
	"commguard/internal/stream"
)

func main() {
	appName := flag.String("app", "jpeg", "benchmark: audiobeamformer|channelvocoder|complex-fir|fft|jpeg|mp3")
	mtbe := flag.Float64("mtbe", 0, "if > 0, print the Rely-style frame reliability analysis at this MTBE")
	doCheck := flag.Bool("check", false, "run the static verification pass (CG001-CG006) and exit non-zero on errors")
	flag.Parse()

	if err := run(*appName, *mtbe, *doCheck); err != nil {
		fmt.Fprintln(os.Stderr, "streamgraph:", err)
		os.Exit(1)
	}
}

func run(appName string, mtbe float64, doCheck bool) error {
	b, ok := apps.ByName(appName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", appName)
	}
	inst, err := b.New()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d edges\n\n", inst.Name, len(inst.Graph.Nodes), len(inst.Graph.Edges))
	fmt.Print(inst.Graph.String())

	sched, err := stream.Solve(inst.Graph)
	if err != nil {
		return err
	}
	fmt.Println("\nsteady-state schedule (one iteration = one application-wide frame):")
	for _, n := range inst.Graph.Nodes {
		fmt.Printf("  %-24s x%d firings\n", n.Name(), sched.Multiplicity[n.ID])
	}
	fmt.Println("\nper-edge frame sizes:")
	for _, e := range inst.Graph.Edges {
		fmt.Printf("  edge %2d %-20s -> %-20s %6d items/frame\n",
			e.ID, e.Src.Name(), e.Dst.Name(), sched.EdgeItems[e.ID])
	}
	fmt.Printf("\ntotal items per frame across all edges: %d\n", sched.FrameItems())

	if doCheck {
		report := check.Run(inst.Graph, check.DefaultConfig())
		fmt.Println("\nstatic verification:")
		fmt.Println(report)
		if report.HasErrors() {
			return fmt.Errorf("%d error-severity findings", len(report.Errors()))
		}
	}

	if mtbe > 0 {
		a, err := rely.Analyze(inst.Graph, mtbe, fault.DefaultModel(true))
		if err != nil {
			return err
		}
		fmt.Printf("\nframe reliability analysis at MTBE %.0f instructions/core:\n", mtbe)
		for _, c := range a.Cores {
			fmt.Printf("  %-24s %8d instr/frame   P(error/frame) = %.4f\n",
				c.Node, c.InstructionsPerFrame, c.PFrameError)
		}
		fmt.Printf("P(output frame clean)        %.4f\n", a.PFrameClean)
		fmt.Printf("mean clean run               %.1f frames\n", a.FramesToReliability())
		fmt.Printf("expected realignment loss    %.4f%% of data\n", 100*a.ExpectedLossRatio)
		fmt.Printf("unguarded clean ratio        %.4f (100-frame stream; decays with length)\n",
			a.UnguardedCleanRatio(100))
	}
	return nil
}

// Command critmap runs the control-criticality dataflow analysis
// (internal/crit) over the repo's filter implementations and codec
// kernels, printing the per-filter protection map and any CM001–CM003
// findings (filters deriving control flow from popped data — the
// statically-detectable catastrophic pattern of §3). It exits 1 on any
// unsuppressed finding.
//
// Examples:
//
//	critmap -all            analyze every filter and kernel source
//	critmap -app jpeg       analyze one benchmark's sources
//	critmap -all -json      emit the shared diagnostic schema for CI
//	critmap -all -vars      also list each filter's classified variables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"commguard/internal/crit"
	"commguard/internal/diag"
)

// appSources maps a benchmark name to the sources it is built from: its
// app file (filter mode) plus the kernel packages it calls (kernel mode).
// internal/stream is always included — the builtin Source/Sink/splitter
// Work methods run in every graph.
var appSources = map[string]struct {
	file    string
	kernels []string
}{
	"audiobeamformer": {file: "beamformer.go"},
	"channelvocoder":  {file: "vocoder.go"},
	"complex-fir":     {file: "complexfir.go", kernels: []string{"internal/dsp"}},
	"fft":             {file: "fft.go", kernels: []string{"internal/dsp"}},
	"jpeg":            {file: "jpeg.go", kernels: []string{"internal/codec/jpegcodec", "internal/codec/bitio", "internal/dsp"}},
	"mp3":             {file: "mp3.go", kernels: []string{"internal/codec/mp3codec", "internal/codec/bitio", "internal/dsp"}},
	"doall":           {file: "doall.go"},
}

func main() {
	appName := flag.String("app", "", "benchmark to analyze (audiobeamformer, channelvocoder, complex-fir, fft, jpeg, mp3, doall)")
	all := flag.Bool("all", false, "analyze every filter and kernel source in the repo")
	jsonOut := flag.Bool("json", false, "emit the shared diagnostic JSON schema (internal/diag)")
	vars := flag.Bool("vars", false, "list each filter's classified variables (human output only)")
	root := flag.String("root", "", "repo root (default: walk up to the enclosing go.mod)")
	flag.Parse()

	if *all == (*appName != "") {
		fmt.Fprintln(os.Stderr, "critmap: pass exactly one of -app NAME or -all")
		os.Exit(2)
	}

	r := *root
	if r == "" {
		var err error
		r, err = crit.FindRepoRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "critmap: %v\n", err)
			os.Exit(2)
		}
	}

	m, err := analyze(r, *all, *appName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critmap: %v\n", err)
		os.Exit(2)
	}

	findings := m.Findings()
	if *jsonOut {
		ds := make([]diag.Diagnostic, 0, len(findings))
		for _, fi := range findings {
			ds = append(ds, diag.Diagnostic{
				Tool:     "critmap",
				Code:     fi.Code,
				Severity: "error",
				File:     fi.Pos.Filename,
				Line:     fi.Pos.Line,
				Col:      fi.Pos.Column,
				Node:     fi.Filter,
				Message:  fi.Message,
			})
		}
		if err := diag.NewReport("critmap", ds).Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "critmap: %v\n", err)
			os.Exit(2)
		}
	} else {
		printHuman(m, *vars)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func analyze(root string, all bool, appName string) (*crit.ProtectionMap, error) {
	if all {
		return crit.AnalyzeRepo(root)
	}
	src, ok := appSources[appName]
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", appName)
	}
	m := &crit.ProtectionMap{}
	fm, err := crit.AnalyzeFile(filepath.Join(root, "internal", "apps", src.file), crit.FilterMode)
	if err != nil {
		return nil, err
	}
	m.Merge(fm)
	sm, err := crit.AnalyzeDir(filepath.Join(root, "internal", "stream"), crit.FilterMode)
	if err != nil {
		return nil, err
	}
	m.Merge(sm)
	for _, k := range src.kernels {
		km, err := crit.AnalyzeDir(filepath.Join(root, filepath.FromSlash(k)), crit.KernelMode)
		if err != nil {
			return nil, err
		}
		m.Merge(km)
	}
	return m, nil
}

func printHuman(m *crit.ProtectionMap, vars bool) {
	for _, f := range m.Filters {
		fmt.Printf("%-42s crit=%5.1f%% (%d/%d stmts)  %s:%d\n",
			f.Name, 100*f.ControlFraction(), f.ControlStmts, f.Stmts, f.File, f.Line)
		if vars {
			for _, v := range f.Vars {
				flags := ""
				if v.PopTainted {
					flags += " pop-tainted"
					if v.Guarded {
						flags += " guarded"
					}
				}
				fmt.Printf("    %-24s %s%s\n", v.Name, v.KindName, flags)
			}
		}
	}
	fmt.Printf("mean control-critical fraction: %.1f%% over %d functions\n",
		100*m.MeanFraction(), len(m.Filters))
	for _, fi := range m.Findings() {
		fmt.Println(fi)
	}
}

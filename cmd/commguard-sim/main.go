// Command commguard-sim runs one benchmark application on the simulated
// error-prone multiprocessor under a chosen protection configuration and
// reports output quality, error-injection activity and CommGuard
// statistics.
//
// Example:
//
//	commguard-sim -app jpeg -protection commguard -mtbe 512000 -seed 1
//	commguard-sim -app mp3 -protection reliable-queue -mtbe 1000000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"commguard/internal/apps"
	"commguard/internal/ecc"
	"commguard/internal/media"
	"commguard/internal/obs"
	"commguard/internal/sim"
	"commguard/internal/stream"
	"commguard/internal/viz"
)

func main() {
	var (
		appName    = flag.String("app", "jpeg", "benchmark: audiobeamformer|channelvocoder|complex-fir|fft|jpeg|mp3")
		protection = flag.String("protection", "commguard", "protection: error-free|software-queue|reliable-queue|commguard|abft")
		mtbe       = flag.Float64("mtbe", 512_000, "per-core mean instructions between errors (0 = error-free)")
		seed       = flag.Int64("seed", 1, "error-injection seed")
		scale      = flag.Int("scale", 1, "frame-size scale (1, 2, 4, 8)")
		verbose    = flag.Bool("v", false, "print per-core statistics")
		outPath    = flag.String("out", "", "dump the decoded output (jpeg: .ppm image; mp3/audio apps: .wav)")
		frames     = flag.Bool("frames", false, "print a per-frame damage map vs the reference (the Fig. 7 view)")
		trace      = flag.String("trace", "", "record an event trace and write <base>.trace.json (Perfetto), <base>.jsonl (diag schema), <base>.snapshot.json (telemetry); also prints the applied-error timeline and AM state timelines")
		sequential = flag.Bool("sequential", false, "bit-reproducible single-goroutine execution (static schedule)")
		coder      = flag.String("coder", "", "ECC backend protecting headers and shared pointers: hamming (default), ldpc, or ldpc-N-WC-WR")

		health        = flag.Bool("health", false, "collect runtime-health latency histograms (queue waits, firing durations, fault→detection latency) and print their quantiles")
		metricsPath   = flag.String("metrics", "", "write the runtime-health histogram artifact <path>.metrics.json (implies -health)")
		flight        = flag.String("flight", "", "arm an anomaly-triggered flight recorder: trace rings run continuously, and a fired trigger writes <base>.flight.json plus the trace pair at this artifact base")
		flightQuality = flag.Float64("flight-quality", 0, "with -flight: trigger when output quality falls below this floor (dB, 0 disables)")
		flightSlow    = flag.Float64("flight-slowpath", 0, "with -flight: trigger when queue timeouts exceed this rate per 1000 delivered items (0 disables)")
		flightStorm   = flag.Float64("flight-storm", 0, "with -flight: trigger when manifested faults exceed this rate per 1000 committed instructions (0 disables)")
	)
	flag.Parse()

	var fopts *obs.FlightOptions
	if *flight != "" {
		fopts = &obs.FlightOptions{
			Path:              *flight,
			Watchdog:          true,
			QualityFloorDB:    *flightQuality,
			SlowPathPerKItems: *flightSlow,
			FaultsPerKInstr:   *flightStorm,
		}
	} else if *flightQuality != 0 || *flightSlow != 0 || *flightStorm != 0 {
		fmt.Fprintln(os.Stderr, "commguard-sim: -flight-quality/-flight-slowpath/-flight-storm require -flight")
		os.Exit(2)
	}

	if err := run(*appName, *protection, *coder, *mtbe, *seed, *scale, *verbose, *outPath, *trace, *frames, *sequential, *health || *metricsPath != "", *metricsPath, fopts); err != nil {
		fmt.Fprintln(os.Stderr, "commguard-sim:", err)
		os.Exit(1)
	}
}

func parseProtection(s string) (sim.Protection, error) {
	switch strings.ToLower(s) {
	case "error-free", "a":
		return sim.ErrorFree, nil
	case "software-queue", "b":
		return sim.SoftwareQueue, nil
	case "reliable-queue", "c":
		return sim.ReliableQueue, nil
	case "commguard", "d":
		return sim.CommGuard, nil
	case "abft", "e":
		return sim.ABFT, nil
	}
	return 0, fmt.Errorf("unknown protection %q", s)
}

func run(appName, protection, coder string, mtbe float64, seed int64, scale int, verbose bool, outPath, tracePath string, frames, sequential, health bool, metricsPath string, fopts *obs.FlightOptions) error {
	b, ok := apps.ByName(appName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", appName)
	}
	prot, err := parseProtection(protection)
	if err != nil {
		return err
	}
	if _, err := ecc.ParseCoder(coder); err != nil {
		return err
	}
	tracing := tracePath != ""
	cfg := sim.Config{Protection: prot, MTBE: mtbe, Seed: seed, FrameScale: scale, Coder: coder, Trace: tracing, Sequential: sequential, Health: health, Flight: fopts}
	if tracing {
		cfg.TraceEvents = -1 // default ring capacity
	}
	res, err := sim.RunBenchmark(b, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("benchmark      %s\n", res.App)
	fmt.Printf("protection     %s\n", res.Protection)
	if prot != sim.ErrorFree {
		fmt.Printf("MTBE           %.0f instructions/core\n", res.MTBE)
		fmt.Printf("seed           %d\n", res.Seed)
	}
	fmt.Printf("frame scale    x%d\n", res.FrameScale)
	if coder != "" {
		fmt.Printf("coder          %s\n", ecc.MustCoder(coder).Name())
	}
	fmt.Printf("iterations     %d steady-state frames\n", res.Run.Iterations)
	fmt.Printf("instructions   %d committed across %d cores\n", res.Run.TotalInstructions(), len(res.Run.Cores))
	fmt.Printf("wall clock     %s\n", res.Run.Elapsed)

	injected := uint64(0)
	for _, c := range res.Run.Cores {
		injected += c.Errors.Total()
	}
	fmt.Printf("errors         %d injected\n", injected)
	if prot != sim.ErrorFree || res.App == "jpeg" || res.App == "mp3" {
		if math.IsNaN(res.Quality) {
			fmt.Printf("quality        n/a (no reference) %s\n", res.Metric)
		} else {
			fmt.Printf("quality        %.2f dB %s\n", res.Quality, res.Metric)
		}
	}
	if prot == sim.ABFT {
		var abft stream.ABFTStats
		for _, c := range res.Run.Cores {
			abft.Add(c.ABFT)
		}
		fmt.Printf("abft           %d corrections (checksum ops %d, recompute ops %d)\n",
			abft.Corrections, abft.ChecksumOps, abft.RecomputeOps)
	}
	if res.Guard != nil {
		g := res.Guard
		fmt.Printf("headers        %d inserted (%d end-of-computation)\n", g.HI.HeadersInserted, g.HI.EOCInserted)
		fmt.Printf("realignments   %d (padded %d items, discarded %d items)\n",
			g.AM.Realignments, g.AM.PaddedItems, g.AM.DiscardedItems)
		fmt.Printf("data loss      %.4f%% of delivered items\n", 100*res.DataLossRatio())
		fmt.Printf("suboperations  FSM/counter %d, ECC %d, header-bit %d\n",
			g.Ops.FSMCounter, g.Ops.ECC, g.Ops.HeaderBit)
	}
	if verbose {
		fmt.Println("\nper-core statistics:")
		for _, c := range res.Run.Cores {
			fmt.Printf("  %-22s instr=%-10d firings=%-8d skipped=%-3d repeated=%-3d errors=%d\n",
				c.Node, c.Instructions, c.Firings, c.SkippedFirings, c.RepeatedFirings, c.Errors.Total())
		}
		qt := res.Run.QueueTotals()
		fmt.Printf("\nqueue totals: %d item stores, %d item loads, %d header stores, %d header loads, %d pointer-ECC ops\n",
			qt.ItemStores, qt.ItemLoads, qt.HeaderStores, qt.HeaderLoads, qt.PointerECCOps)
		fmt.Printf("timeouts: %d push, %d pop; forced overwrites: %d; corrected pointer errors: %d\n",
			qt.PushTimeouts, qt.PopTimeouts, qt.ForcedOverwrites, qt.CorrectedPointerErrors)
	}
	if tracing {
		fmt.Printf("\nerror timeline (%d events):\n", len(res.Errors))
		for _, ev := range res.Errors {
			fmt.Printf("  core %-2d %-24s frame %-5d instr %-10d %s\n",
				ev.Core, ev.Node, ev.Frame, ev.Instructions, ev.Class)
		}
		if err := writeTrace(tracePath, res, cfg); err != nil {
			return err
		}
	}
	if frames {
		// The damage map compares against the error-free *decode* (for the
		// media benchmarks the quality reference is the original media,
		// which differs everywhere by quantization).
		cleanInst, err := b.New()
		if err != nil {
			return err
		}
		cleanRes, err := sim.Run(cleanInst, sim.Config{Protection: sim.ErrorFree, FrameScale: scale, Sequential: sequential}, nil)
		if err != nil {
			return err
		}
		frameLen := frameLenFor(res.App, len(cleanRes.Output))
		m := viz.FrameMap(cleanRes.Output, res.Output, frameLen, frameTolFor(res.App))
		fmt.Printf("frame map      %d/%d frames hit ('.'=clean 'x'=hit '-'=missing)\n",
			viz.CorruptedFrames(m), len(m))
		fmt.Printf("  %s\n", m)
	}
	if health {
		fmt.Println("\nruntime-health latency histograms:")
		fmt.Printf("  %-16s %10s %12s %12s %12s %6s\n", "histogram", "count", "p50", "p90", "p99", "unit")
		for _, s := range res.Health {
			fmt.Printf("  %-16s %10d %12.0f %12.0f %12.0f %6s\n", s.Name, s.Count, s.P50, s.P90, s.P99, s.Unit)
		}
		if metricsPath != "" {
			p, err := writeMetrics(metricsPath, res, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("metrics        written to %s\n", p)
		}
	}
	if fopts != nil {
		if len(res.FlightDumps) > 0 {
			fmt.Printf("flight         TRIGGERED -> %s\n", strings.Join(res.FlightDumps, ", "))
		} else {
			fmt.Println("flight         armed, no trigger fired (no artifacts written)")
		}
	}
	if outPath != "" {
		if err := dumpOutput(outPath, res); err != nil {
			return err
		}
		fmt.Printf("output         written to %s\n", outPath)
	}
	return nil
}

// writeMetrics writes the runtime-health histogram artifact
// <base>.metrics.json under the run's manifest.
func writeMetrics(base string, res *sim.Result, cfg sim.Config) (string, error) {
	path := base + ".metrics.json"
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := obs.WriteMetrics(f, res.Manifest(cfg), res.Health); err != nil {
		return "", err
	}
	return path, nil
}

// writeTrace writes the run's event-trace artifacts next to base and
// prints the per-consumer AM state timelines.
func writeTrace(base string, res *sim.Result, cfg sim.Config) error {
	if res.Trace == nil {
		return fmt.Errorf("no trace was recorded")
	}
	paths, err := res.Trace.WriteFiles(base)
	if err != nil {
		return err
	}
	snapPath := base + ".snapshot.json"
	sf, err := os.Create(snapPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	if err := res.Snapshot(cfg).WriteJSON(sf); err != nil {
		return err
	}
	paths = append(paths, snapPath)

	fmt.Printf("\ntrace          %d events (%d dropped) -> %s\n",
		len(res.Trace.Events), res.Trace.Dropped, strings.Join(paths, ", "))
	seqs := res.Trace.AMSequences()
	if len(seqs) > 0 {
		fmt.Printf("\nAM state timelines (%s):\n", viz.TimelineLegend())
		for _, seq := range seqs {
			fmt.Printf("  q%-3d %-32s %s\n", seq.Queue, seq.Name, viz.StateTimeline(seq.States))
		}
	}
	return nil
}

// frameLenFor returns the output samples per steady-state frame of each
// benchmark (one sink firing's worth).
func frameLenFor(app string, _ int) int {
	switch app {
	case "jpeg":
		cfg := apps.DefaultJPEGConfig()
		return 3 * cfg.W * 8 // one 8-pixel-high row of RGB
	case "mp3":
		return 256
	case "fft":
		return 64
	default:
		// Per-sample apps: group output into 64-sample frames for display.
		return 64
	}
}

// frameTolFor allows tiny float drift for the DSP benchmarks while keeping
// the media benchmarks exact.
func frameTolFor(app string) float64 {
	switch app {
	case "jpeg":
		// Mark a row as hit only for visible damage (more than a few
		// intensity levels), not single-level rounding differences.
		return 8
	default:
		return 1e-6
	}
}

// dumpOutput writes the run's decoded output in an inspectable format:
// jpeg as a PPM image, the audio benchmarks as 16-bit WAV.
func dumpOutput(path string, res *sim.Result) error {
	if res.App == "jpeg" {
		cfg := apps.DefaultJPEGConfig()
		return media.WritePPMFile(path, media.PixelsToImage(res.Output, cfg.W, cfg.H))
	}
	// Audio-like outputs are float sample streams.
	return media.WriteWAVFile(path, res.Output, 44100)
}

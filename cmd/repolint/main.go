// Command repolint runs the repo's stdlib-only source analyzer (see
// internal/lint) over the given packages and prints findings as
// "file:line:col: [RULE] message". It exits 1 when anything is found.
//
// Patterns follow the go tool's shape: a directory lints its .go files, a
// trailing /... recurses. With no arguments it lints ./... .
//
//	go run ./cmd/repolint ./...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"commguard/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	for _, pat := range patterns {
		fs, err := lintPattern(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// lintPattern resolves one command-line pattern to findings.
func lintPattern(pat string) ([]lint.Finding, error) {
	if rest, ok := strings.CutSuffix(pat, "..."); ok {
		root := filepath.Clean(rest)
		if root == "" || rest == "" {
			root = "."
		}
		return lint.Run(root)
	}
	info, err := os.Stat(pat)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return lint.File(pat)
	}
	entries, err := os.ReadDir(pat)
	if err != nil {
		return nil, err
	}
	var findings []lint.Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fs, err := lint.File(filepath.Join(pat, e.Name()))
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// Command repolint runs the repo's stdlib-only source analyzer (see
// internal/lint) over the given packages and prints findings as
// "file:line:col: [RULE] message". It exits 1 when anything is found.
//
// Patterns follow the go tool's shape: a directory lints its .go files, a
// trailing /... recurses. With no arguments it lints ./... .
//
//	go run ./cmd/repolint ./...
//	go run ./cmd/repolint -json ./...    emit the shared diagnostic schema for CI
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"commguard/internal/diag"
	"commguard/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the shared diagnostic JSON schema (internal/diag)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	for _, pat := range patterns {
		fs, err := lintPattern(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if *jsonOut {
		ds := make([]diag.Diagnostic, 0, len(findings))
		for _, f := range findings {
			ds = append(ds, diag.Diagnostic{
				Tool:     "repolint",
				Code:     f.Rule,
				Severity: "warning",
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		if err := diag.NewReport("repolint", ds).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// lintPattern resolves one command-line pattern to findings.
func lintPattern(pat string) ([]lint.Finding, error) {
	if rest, ok := strings.CutSuffix(pat, "..."); ok {
		root := filepath.Clean(rest)
		if root == "" || rest == "" {
			root = "."
		}
		return lint.Run(root)
	}
	info, err := os.Stat(pat)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return lint.File(pat)
	}
	entries, err := os.ReadDir(pat)
	if err != nil {
		return nil, err
	}
	var findings []lint.Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fs, err := lint.File(filepath.Join(pat, e.Name()))
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write drops content into a temp file with the exact artifact-suffix
// name tracecheck dispatches on.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	goodManifest = `"manifest": {"go_version": "go1.24.0", "gomaxprocs": 1}`
	goodMetrics  = `{` + goodManifest + `, "histograms": [
		{"name": "fire_item", "unit": "ns", "count": 2, "buckets": [0, 1, 1], "p50": 1, "p90": 2, "p99": 2}]}`
	goodFlight = `{` + goodManifest + `, "triggers": [{"kind": "hang", "detail": "cancelled"}],
		"events": 4, "artifacts": ["x.trace.json"]}`
)

// TestExitCodeContract pins tracecheck's exit statuses: 0 all valid, 1
// any invalid, 2 usage.
func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "ok.metrics.json", goodMetrics)
	bad := write(t, dir, "bad.metrics.json", `{}`)

	if code := run(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{good}); code != 0 {
		t.Errorf("valid artifact: exit %d, want 0", code)
	}
	if code := run([]string{bad}); code != 1 {
		t.Errorf("invalid artifact: exit %d, want 1", code)
	}
	// A bad file fails the batch even when good ones surround it, and an
	// unknown suffix is a validation failure, not a usage error.
	if code := run([]string{good, bad}); code != 1 {
		t.Errorf("mixed batch: exit %d, want 1", code)
	}
	if code := run([]string{write(t, dir, "what.bin", "x")}); code != 1 {
		t.Errorf("unknown suffix: exit %d, want 1", code)
	}
	if code := run([]string{filepath.Join(dir, "absent.metrics.json")}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

// TestDispatchNewArtifacts pins the suffix dispatch for the
// runtime-health artifacts: .metrics.json and .flight.json land on
// their validators (rejecting each other's shapes), and dispatch checks
// the most specific suffix first.
func TestDispatchNewArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := check(write(t, dir, "run.metrics.json", goodMetrics)); err != nil {
		t.Errorf("valid metrics rejected: %v", err)
	}
	if err := check(write(t, dir, "run.flight.json", goodFlight)); err != nil {
		t.Errorf("valid flight dump rejected: %v", err)
	}
	if err := check(write(t, dir, "cross.metrics.json", goodFlight)); err == nil {
		t.Error("flight dump accepted as metrics")
	}
	if err := check(write(t, dir, "cross.flight.json", goodMetrics)); err == nil {
		t.Error("metrics accepted as flight dump")
	}
}

// Command tracecheck validates observability artifacts against the shared
// internal/diag schema: trace JSONL streams, Chrome trace-event JSON, and
// run telemetry snapshots. CI runs it over the artifacts a traced
// commguard-sim run produces.
//
// Usage:
//
//	tracecheck run.jsonl run.trace.json run.snapshot.json
//
// The file kind is chosen by suffix: .jsonl (trace event stream),
// .trace.json (Chrome trace-event JSON), .snapshot.json (telemetry
// snapshot), .metrics.json (runtime-health histograms), .flight.json
// (flight-recorder dump), *kernels.json (kernel firing-path benchmark,
// e.g. BENCH_kernels.json). Exit status is 1 if any file fails
// validation, 2 on usage errors.
package main

import (
	"fmt"
	"os"
	"strings"

	"commguard/internal/diag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run validates each artifact and returns the process exit status: 0
// when every file validates, 1 when any fails, 2 on usage errors.
func run(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <file>...")
		return 2
	}
	failed := false
	for _, path := range paths {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func check(path string) error {
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := diag.ValidateTraceJSONL(f)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("no events")
		}
		fmt.Printf("%s: ok (%d events)\n", path, n)
		return nil
	case strings.HasSuffix(path, ".trace.json"):
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := diag.ValidateChromeTrace(data); err != nil {
			return err
		}
		fmt.Printf("%s: ok (chrome trace)\n", path)
		return nil
	case strings.HasSuffix(path, ".metrics.json"):
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := diag.ValidateMetrics(data); err != nil {
			return err
		}
		fmt.Printf("%s: ok (health metrics)\n", path)
		return nil
	case strings.HasSuffix(path, ".flight.json"):
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := diag.ValidateFlight(data); err != nil {
			return err
		}
		fmt.Printf("%s: ok (flight dump)\n", path)
		return nil
	case strings.HasSuffix(path, ".snapshot.json"):
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := diag.ValidateSnapshot(data); err != nil {
			return err
		}
		fmt.Printf("%s: ok (snapshot)\n", path)
		return nil
	case strings.HasSuffix(path, "kernels.json"):
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := diag.ValidateKernelBench(data); err != nil {
			return err
		}
		fmt.Printf("%s: ok (kernel bench)\n", path)
		return nil
	}
	return fmt.Errorf("unknown artifact kind (want .jsonl, .trace.json, .snapshot.json, .metrics.json, .flight.json or *kernels.json)")
}

package commguard_test

import (
	"math"
	"sync"
	"testing"

	"commguard/internal/apps"
	"commguard/internal/sim"
)

// quickApps returns reduced-size instances of all six benchmarks for the
// full-system matrix tests.
func quickApps() []apps.Builder {
	return []apps.Builder{
		{Name: "audiobeamformer", New: func() (*apps.Instance, error) {
			return apps.NewBeamformer(apps.BeamformerConfig{Channels: 4, Samples: 768, Delay: 3})
		}},
		{Name: "channelvocoder", New: func() (*apps.Instance, error) {
			return apps.NewVocoder(apps.VocoderConfig{Bands: 3, Samples: 768})
		}},
		{Name: "complex-fir", New: func() (*apps.Instance, error) {
			return apps.NewComplexFIR(apps.ComplexFIRConfig{Samples: 768, Stages: 3, Taps: 8})
		}},
		{Name: "fft", New: func() (*apps.Instance, error) {
			return apps.NewFFT(apps.FFTConfig{Points: 64, Blocks: 12})
		}},
		{Name: "jpeg", New: func() (*apps.Instance, error) {
			return apps.NewJPEG(apps.JPEGConfig{W: 128, H: 32, Quality: 75})
		}},
		{Name: "mp3", New: func() (*apps.Instance, error) {
			return apps.NewMP3(apps.MP3Config{Frames: 10})
		}},
	}
}

// The full matrix: every benchmark under every protection configuration
// must terminate, produce output, and never panic or deadlock — the
// paper's requirement 1 (§2.1.1: an error-tolerant execution needs to
// progress).
func TestSystemMatrixProgress(t *testing.T) {
	for _, b := range quickApps() {
		for _, p := range []sim.Protection{sim.ErrorFree, sim.SoftwareQueue, sim.ReliableQueue, sim.CommGuard} {
			b, p := b, p
			t.Run(b.Name+"/"+p.String(), func(t *testing.T) {
				t.Parallel()
				mtbe := 20_000.0 // dense enough that even the smallest benchmark sees errors
				if p == sim.ErrorFree {
					mtbe = 0
				}
				res, err := sim.RunBenchmark(b, sim.Config{Protection: p, MTBE: mtbe, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Output) == 0 {
					t.Fatal("no output collected")
				}
				if res.Run.TotalInstructions() == 0 {
					t.Fatal("no instructions committed")
				}
				if p != sim.ErrorFree {
					injected := uint64(0)
					for _, c := range res.Run.Cores {
						injected += c.Errors.Total()
					}
					if injected == 0 {
						t.Errorf("no errors injected at MTBE %v", mtbe)
					}
				}
				if p == sim.CommGuard {
					if res.Guard == nil {
						t.Fatal("missing guard stats")
					}
					if loss := res.DataLossRatio(); loss < 0 || loss > 0.5 {
						t.Errorf("loss ratio %v out of sane range", loss)
					}
				}
			})
		}
	}
}

// The headline ordering, benchmark by benchmark: averaged over seeds,
// CommGuard quality >= unguarded quality at the same *sustained* error
// rate (every run sees multiple alignment errors — the paper's operating
// regime). At very sparse error rates the comparison can invert for
// shift-tolerant outputs (e.g. FFT magnitudes): a one-item stream shift
// costs less SNR than padding out the frame it occurred in. See
// EXPERIMENTS.md ("When CommGuard does not pay off").
func TestSystemCommGuardOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical comparison")
	}
	clamp := func(q float64) float64 {
		if math.IsInf(q, 1) || q > 160 {
			return 160
		}
		if math.IsNaN(q) || q < -40 {
			return -40
		}
		return q
	}
	var mu sync.Mutex
	var sumGuarded, sumUnguarded float64
	var wg sync.WaitGroup
	for _, b := range quickApps() {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			const seeds = 6
			var guarded, unguarded float64
			for s := int64(0); s < seeds; s++ {
				// Sequential mode: deterministic results, independent of
				// wall-clock timeouts and scheduler speed (the comparison
				// is statistical, the runs should not be).
				rg, err := sim.RunBenchmark(b, sim.Config{Protection: sim.CommGuard, MTBE: 20_000, Seed: 200 + s, Sequential: true})
				if err != nil {
					t.Error(err)
					return
				}
				ru, err := sim.RunBenchmark(b, sim.Config{Protection: sim.ReliableQueue, MTBE: 20_000, Seed: 200 + s, Sequential: true})
				if err != nil {
					t.Error(err)
					return
				}
				guarded += clamp(rg.Quality)
				unguarded += clamp(ru.Quality)
			}
			guarded /= seeds
			unguarded /= seeds
			t.Logf("%s: guarded %.1f dB vs unguarded %.1f dB", b.Name, guarded, unguarded)
			// Per-benchmark, allow seed noise; a large inversion is a bug.
			if guarded < unguarded-10 {
				t.Errorf("%s: CommGuard (%.1f dB) drastically worse than unguarded (%.1f dB)", b.Name, guarded, unguarded)
			}
			mu.Lock()
			sumGuarded += guarded
			sumUnguarded += unguarded
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Across the suite, CommGuard must clearly win at sustained rates.
	t.Logf("suite: guarded %.1f dB vs unguarded %.1f dB (sums)", sumGuarded, sumUnguarded)
	if sumGuarded <= sumUnguarded {
		t.Errorf("suite-wide CommGuard total %.1f dB not better than unguarded %.1f dB", sumGuarded, sumUnguarded)
	}
}

// Determinism: the same configuration and seed produce the same injected
// error counts and the same realignment totals across the whole system.
func TestSystemDeterministicReplay(t *testing.T) {
	b, _ := apps.ByName("mp3")
	cfg := sim.Config{Protection: sim.CommGuard, MTBE: 150_000, Seed: 99}
	sig := func() [2]uint64 {
		res, err := sim.RunBenchmark(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		injected := uint64(0)
		for _, c := range res.Run.Cores {
			injected += c.Errors.Total()
		}
		return [2]uint64{injected, res.Guard.HI.HeadersInserted}
	}
	a, bb := sig(), sig()
	if a != bb {
		t.Errorf("replay mismatch: %v vs %v", a, bb)
	}
}
